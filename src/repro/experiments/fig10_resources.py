"""Experiment EXP-F10: factory resource requirements (Fig. 10a-f).

Fig. 10 reports, for single-level factories (left column) and two-level
factories (right column), the latency, area and space-time volume achieved by
each mapping procedure as the factory capacity grows.  The qualitative shape
this experiment reproduces:

* single level (10a/10b/10e) — the linear baseline is already near optimal;
  force-directed gives a small improvement; graph partitioning is competitive
  but does not beat the hand layout;
* two level (10c/10d/10f) — the linear baseline deteriorates, graph
  partitioning overtakes it as the permutation step starts to dominate, and
  hierarchical stitching achieves the lowest volume of all procedures (the
  paper's headline 5.64x reduction at capacity 100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.sweeps import FactoryEvaluation, capacity_sweep
from ..api.experiments import (
    SEED_PARAM,
    WORKERS_PARAM,
    ParamSpec,
    register_experiment,
)
from ..api.results import evaluation_series_from_dict, evaluation_series_to_dict
from ..mapping.force_directed import ForceDirectedConfig
from ..mapping.stitching import StitchingConfig
from ..routing.simulator import SimulatorConfig

#: Capacities of the paper's single-level sweeps (Fig. 10a/10b/10e).
PAPER_SINGLE_LEVEL_CAPACITIES = (2, 4, 6, 8, 12, 16, 20, 24)
#: Capacities of the paper's two-level sweeps (Fig. 10c/10d/10f).
PAPER_TWO_LEVEL_CAPACITIES = (4, 16, 36, 64, 100)

DEFAULT_SINGLE_LEVEL_CAPACITIES = (2, 4, 6, 8, 12, 16, 20, 24)
DEFAULT_TWO_LEVEL_CAPACITIES = (4, 16)

SINGLE_LEVEL_METHODS = ("linear", "force_directed", "graph_partition")
TWO_LEVEL_METHODS = (
    "linear",
    "force_directed",
    "graph_partition",
    "hierarchical_stitching",
)

#: Headline result of the paper: volume reduction of hierarchical stitching
#: over the linear (no-reuse) baseline for the capacity-100 two-level factory.
PAPER_HEADLINE_REDUCTION = 5.64


@dataclass(frozen=True)
class Fig10Result:
    """A latency/area/volume sweep for one factory level."""

    levels: int
    evaluations: List[FactoryEvaluation]

    def series(self, value: str) -> Dict[str, Dict[int, int]]:
        """``{method: {capacity: value}}`` for ``value`` in latency/area/volume."""
        if value not in ("latency", "area", "volume"):
            raise ValueError(f"unknown value field {value!r}")
        table: Dict[str, Dict[int, int]] = {}
        for evaluation in self.evaluations:
            table.setdefault(evaluation.method, {})[evaluation.capacity] = getattr(
                evaluation, value
            )
        return table

    def volume_reduction(
        self,
        capacity: int,
        baseline: str = "linear",
        best: str = "hierarchical_stitching",
    ) -> float:
        """Volume of ``baseline`` divided by volume of ``best`` at ``capacity``."""
        volumes = self.series("volume")
        baseline_volume = volumes[baseline][capacity]
        best_volume = volumes[best][capacity]
        if best_volume == 0:
            return float("inf")
        return baseline_volume / best_volume

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the per-configuration evaluations."""
        return evaluation_series_to_dict(self.levels, self.evaluations)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fig10Result":
        """Inverse of :meth:`to_dict`."""
        levels, evaluations = evaluation_series_from_dict(data)
        return cls(levels=levels, evaluations=evaluations)


def run_single_level(
    capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
    workers: int = 1,
) -> Fig10Result:
    """Fig. 10a/10b/10e: single-level latency, area and volume sweeps."""
    capacities = tuple(capacities or DEFAULT_SINGLE_LEVEL_CAPACITIES)
    evaluations = capacity_sweep(
        methods=SINGLE_LEVEL_METHODS,
        capacities=capacities,
        levels=1,
        seed=seed,
        fd_config=fd_config,
        sim_config=sim_config,
        workers=workers,
    )
    return Fig10Result(levels=1, evaluations=evaluations)


def run_two_level(
    capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    stitch_config: Optional[StitchingConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
    workers: int = 1,
) -> Fig10Result:
    """Fig. 10c/10d/10f: two-level latency, area and volume sweeps."""
    capacities = tuple(capacities or DEFAULT_TWO_LEVEL_CAPACITIES)
    evaluations = capacity_sweep(
        methods=TWO_LEVEL_METHODS,
        capacities=capacities,
        levels=2,
        seed=seed,
        fd_config=fd_config,
        stitch_config=stitch_config,
        sim_config=sim_config,
        workers=workers,
    )
    return Fig10Result(levels=2, evaluations=evaluations)


def format_result(result: Fig10Result) -> str:
    """Three stacked tables (latency, area, volume) for the sweep."""
    lines: List[str] = [f"Fig. 10 — factory resources (levels={result.levels})"]
    capacities = sorted({e.capacity for e in result.evaluations})
    for value in ("latency", "area", "volume"):
        series = result.series(value)
        lines.append("")
        lines.append(value)
        header = ["method".ljust(24)] + [f"K={c}".rjust(12) for c in capacities]
        lines.append("".join(header))
        for method, row in series.items():
            cells = [method.ljust(24)]
            for capacity in capacities:
                entry = row.get(capacity)
                cells.append(("-" if entry is None else f"{entry}").rjust(12))
            lines.append("".join(cells))
    return "\n".join(lines)


_CAPACITIES_PARAM = ParamSpec(
    "capacities", "int_list", help="comma-separated factory capacities to sweep"
)

register_experiment(
    "fig10-single",
    run_single_level,
    formatter=format_result,
    params=(_CAPACITIES_PARAM, SEED_PARAM, WORKERS_PARAM),
    description="Fig. 10a/10b/10e: single-level latency/area/volume sweeps",
)
register_experiment(
    "fig10-two",
    run_two_level,
    formatter=format_result,
    params=(_CAPACITIES_PARAM, SEED_PARAM, WORKERS_PARAM),
    description="Fig. 10c/10d/10f: two-level latency/area/volume sweeps",
)
