"""Unit tests for the gate IR (repro.circuits.gates)."""

import pytest

from repro.circuits import gates as g
from repro.circuits.gates import DEFAULT_DURATIONS, Gate, GateKind


class TestGateConstruction:
    def test_cnot_has_control_and_target(self):
        gate = g.cnot(1, 2)
        assert gate.kind is GateKind.CNOT
        assert gate.control == 1
        assert gate.targets == (2,)

    def test_cxx_control_and_targets(self):
        gate = g.cxx(0, [1, 2, 3])
        assert gate.control == 0
        assert gate.targets == (1, 2, 3)

    def test_single_qubit_gate_has_no_control(self):
        assert g.h(3).control is None
        assert g.meas_x(3).control is None

    def test_injection_consumes_raw_state(self):
        gate = g.inject_t(5, 9)
        assert gate.qubits == (5, 9)
        assert gate.control == 5

    def test_barrier_can_be_empty(self):
        gate = g.barrier()
        assert gate.is_barrier
        assert gate.qubits == ()

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            g.cnot(1, 1)

    def test_single_qubit_gate_rejects_two_qubits(self):
        with pytest.raises(ValueError):
            Gate(GateKind.H, (1, 2))

    def test_cnot_requires_exactly_two_qubits(self):
        with pytest.raises(ValueError):
            Gate(GateKind.CNOT, (1,))
        with pytest.raises(ValueError):
            Gate(GateKind.CNOT, (1, 2, 3))

    def test_cxx_requires_at_least_one_target(self):
        with pytest.raises(ValueError):
            Gate(GateKind.CXX, (1,))

    def test_empty_non_barrier_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateKind.H, ())

    def test_gate_is_frozen(self):
        gate = g.cnot(0, 1)
        with pytest.raises(AttributeError):
            gate.qubits = (2, 3)

    def test_tag_not_part_of_equality(self):
        assert g.cnot(0, 1, tag="a") == g.cnot(0, 1, tag="b")


class TestGateProperties:
    def test_braided_kinds(self):
        assert g.cnot(0, 1).is_braided
        assert g.cxx(0, [1, 2]).is_braided
        assert g.inject_t(0, 1).is_braided
        assert g.inject_tdag(0, 1).is_braided
        assert not g.h(0).is_braided
        assert not g.meas_x(0).is_braided
        assert not g.barrier().is_braided

    def test_measurement_kinds(self):
        assert GateKind.MEAS_X.is_measurement
        assert GateKind.MEAS_Z.is_measurement
        assert not GateKind.CNOT.is_measurement

    def test_single_qubit_kinds(self):
        assert GateKind.H.is_single_qubit
        assert GateKind.PREP.is_single_qubit
        assert not GateKind.CNOT.is_single_qubit
        assert not GateKind.BARRIER.is_single_qubit

    def test_default_durations_cover_every_kind(self):
        for kind in GateKind:
            assert kind in DEFAULT_DURATIONS
            assert DEFAULT_DURATIONS[kind] >= 1

    def test_duration_lookup(self):
        assert g.cnot(0, 1).duration() == DEFAULT_DURATIONS[GateKind.CNOT]
        assert g.h(0).duration({GateKind.H: 7}) == 7


class TestInteractionPairs:
    def test_cnot_yields_single_pair(self):
        assert list(g.cnot(2, 5).interaction_pairs()) == [(2, 5)]

    def test_injection_yields_single_pair(self):
        assert list(g.inject_t(4, 7).interaction_pairs()) == [(4, 7)]
        assert list(g.inject_tdag(4, 7).interaction_pairs()) == [(4, 7)]

    def test_cxx_yields_pair_per_target(self):
        pairs = list(g.cxx(0, [1, 2, 3]).interaction_pairs())
        assert pairs == [(0, 1), (0, 2), (0, 3)]

    def test_single_qubit_yields_nothing(self):
        assert list(g.h(0).interaction_pairs()) == []
        assert list(g.meas_x(0).interaction_pairs()) == []

    def test_barrier_yields_nothing(self):
        assert list(g.barrier([0, 1, 2]).interaction_pairs()) == []


class TestRemap:
    def test_remap_changes_mapped_qubits(self):
        gate = g.cnot(0, 1).remap({0: 10, 1: 11})
        assert gate.qubits == (10, 11)

    def test_remap_keeps_unmapped_qubits(self):
        gate = g.cxx(0, [1, 2]).remap({1: 9})
        assert gate.qubits == (0, 9, 2)

    def test_remap_preserves_kind_and_tag(self):
        gate = g.inject_t(0, 1, tag="x").remap({0: 5})
        assert gate.kind is GateKind.INJECT_T
        assert gate.tag == "x"
