"""Tests for the parallel sweep executor and simulation memoization.

The contract under test: a :class:`~repro.api.executor.SweepPlan` fully
determines its results — whatever the worker count — and the executor's
cache accounting is exact.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    EvaluationRequest,
    Pipeline,
    SweepExecutor,
    SweepPlan,
    SweepProgress,
    SweepRunResult,
    capacity_sweep,
    recommended_workers,
    run_sweep,
)
from repro.api.executor import ExecutorStats
from repro.api.pipeline import PipelineStats
from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, prep
from repro.mapping.placement import row_major_placement
from repro.routing.router import BraidRouter
from repro.routing.mesh import Mesh
from repro.routing.simulator import (
    SimulationCache,
    SimulatorConfig,
    circuit_fingerprint,
    simulate,
    simulation_cache_key,
)

METHODS = ("linear", "graph_partition")
CAPACITIES = (2, 3)


def small_plan() -> SweepPlan:
    return SweepPlan.from_grid(methods=METHODS, capacities=CAPACITIES)


def counters(stats: PipelineStats) -> dict:
    """The deterministic counter fields, without the wall-clock timings."""
    return {
        field.name: getattr(stats, field.name)
        for field in dataclasses.fields(stats)
        if not field.name.endswith("_seconds")
    }


# ----------------------------------------------------------------------
# SweepPlan
# ----------------------------------------------------------------------
class TestSweepPlan:
    def test_grid_expansion_order_matches_pipeline_sweep(self):
        plan = small_plan()
        combos = [(r.capacity, r.method) for r in plan]
        assert combos == [
            (capacity, method) for capacity in CAPACITIES for method in METHODS
        ]

    def test_grid_axes_expand(self):
        plan = SweepPlan.from_grid(
            methods=("linear",),
            capacities=(2,),
            levels=(1, 2),
            reuse=(False, True),
            seeds=(0, 1),
        )
        assert len(plan) == 8
        assert {r.levels for r in plan} == {1, 2}
        assert {r.reuse for r in plan} == {False, True}
        assert {r.seed for r in plan} == {0, 1}

    def test_grid_accepts_one_shot_iterators(self):
        """Every axis is materialized before the nested expansion."""
        plan = SweepPlan.from_grid(
            methods=iter(METHODS),
            capacities=iter(CAPACITIES),
            levels=iter([1, 2]),
            seeds=iter([0, 1]),
        )
        assert len(plan) == len(METHODS) * len(CAPACITIES) * 2 * 2
        assert all(isinstance(r.levels, int) for r in plan)

    def test_round_trip(self):
        plan = SweepPlan.from_grid(
            methods=METHODS,
            capacities=CAPACITIES,
            sim_config=SimulatorConfig(max_candidates=3),
        )
        restored = SweepPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan

    def test_sequence_protocol(self):
        plan = small_plan()
        assert len(plan) == len(METHODS) * len(CAPACITIES)
        assert plan[0].method == METHODS[0]
        assert [r.method for r in plan][: len(METHODS)] == list(METHODS)


# ----------------------------------------------------------------------
# Executor determinism
# ----------------------------------------------------------------------
class TestExecutorDeterminism:
    def test_serial_matches_pipeline_sweep(self):
        serial = SweepExecutor(workers=1).run(small_plan())
        reference = Pipeline().sweep(METHODS, CAPACITIES)
        assert serial.evaluations == reference

    def test_workers_1_vs_4_byte_identical(self):
        """Same seed, 1 vs 4 workers: byte-identical serialized results."""
        plan = small_plan()
        serial = SweepExecutor(workers=1).run(plan)
        parallel = SweepExecutor(workers=4).run(plan)
        blob_1 = json.dumps(serial.to_dict(), sort_keys=True)
        blob_4 = json.dumps(parallel.to_dict(), sort_keys=True)
        assert blob_1 == blob_4

    def test_capacity_sweep_workers_kwarg(self):
        assert capacity_sweep(METHODS, CAPACITIES, workers=2) == capacity_sweep(
            METHODS, CAPACITIES
        )

    def test_run_sweep_convenience(self):
        result = run_sweep(small_plan(), workers=1)
        assert isinstance(result, SweepRunResult)
        assert len(result.evaluations) == len(small_plan())

    def test_result_round_trip_drops_stats(self):
        result = SweepExecutor(workers=1).run(small_plan())
        restored = SweepRunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.evaluations == result.evaluations
        # Stats are run observability, not part of the deterministic result.
        assert "stats" not in result.to_dict()
        assert restored.stats.requests == 0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)
        with pytest.raises(ValueError):
            capacity_sweep(METHODS, (2,), workers=0)
        with pytest.raises(ValueError):
            from repro.experiments import table1_volumes

            table1_volumes.run(levels=1, capacities=[2], workers=-1)

    def test_recommended_workers_positive(self):
        assert recommended_workers() >= 1


# ----------------------------------------------------------------------
# Cache accounting
# ----------------------------------------------------------------------
class TestCacheAccounting:
    def test_duplicate_requests_are_deduplicated_exactly(self):
        base = list(small_plan())
        plan = SweepPlan.from_requests(base + [base[0], base[-1], base[0]])
        result = SweepExecutor(workers=1).run(plan)
        stats = result.stats
        assert stats.requests == len(base) + 3
        assert stats.duplicate_hits == 3
        assert stats.evaluations == len(base)
        assert stats.requests == stats.duplicate_hits + stats.evaluations
        # Duplicates are fanned out to their plan positions.
        assert result.evaluations[len(base)] == result.evaluations[0]
        assert result.evaluations[len(base) + 1] == result.evaluations[len(base) - 1]
        assert result.evaluations[len(base) + 2] == result.evaluations[0]

    def test_repeat_run_hits_simulation_cache(self):
        executor = SweepExecutor(workers=1)
        first = executor.run(small_plan())
        assert first.stats.sim_cache_hits == 0
        assert first.stats.factory_builds == len(CAPACITIES)
        second = executor.run(small_plan())
        # Every point re-maps deterministically and every simulation is
        # answered from the memo: same results, zero re-simulation.
        assert second.stats.sim_cache_hits == second.stats.evaluations
        assert second.stats.factory_builds == 0
        assert second.evaluations == first.evaluations

    def test_parallel_accounting_invariant(self):
        plan = SweepPlan.from_requests(list(small_plan()) + [small_plan()[0]])
        stats = SweepExecutor(workers=2).run(plan).stats
        assert stats.requests == stats.duplicate_hits + stats.evaluations
        assert stats.workers == 2
        assert stats.wall_seconds > 0


# ----------------------------------------------------------------------
# Batched evaluation
# ----------------------------------------------------------------------
class TestBatchedExecution:
    def test_batched_run_byte_identical_to_serial(self):
        plan = small_plan()
        serial = SweepExecutor(workers=1).run(plan)
        batched = SweepExecutor(batch=True).run(plan)
        assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )
        assert batched.stats.evaluations == serial.stats.evaluations
        assert batched.stats.sim_cache_hits == serial.stats.sim_cache_hits

    def test_batch_takes_precedence_over_workers(self):
        plan = small_plan()
        serial = SweepExecutor(workers=1).run(plan)
        batched = SweepExecutor(workers=4, batch=True).run(plan)
        assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )

    def test_batched_duplicate_accounting(self):
        """The accounting invariant holds in batch mode, with exact counts."""
        base = list(small_plan())
        plan = SweepPlan.from_requests(base + [base[0], base[-1], base[0]])
        result = SweepExecutor(batch=True).run(plan)
        stats = result.stats
        assert stats.requests == len(base) + 3
        assert stats.duplicate_hits == 3
        assert stats.evaluations == len(base)
        assert stats.requests == (
            stats.duplicate_hits + stats.store_hits + stats.evaluations
        )
        assert result.evaluations[len(base)] == result.evaluations[0]

    def test_pipeline_evaluate_batch_matches_evaluate(self):
        """evaluate_batch == [evaluate(r) ...], results and counters alike
        (the ``*_seconds`` phase timings are wall clock, hence not compared).
        """
        requests = list(small_plan())
        serial_pipeline = Pipeline()
        serial = [serial_pipeline.evaluate(r) for r in requests]
        batch_pipeline = Pipeline()
        batched = batch_pipeline.evaluate_batch(requests)
        assert batched == serial
        assert counters(batch_pipeline.stats) == counters(serial_pipeline.stats)

    def test_pipeline_evaluate_batch_duplicates_count_as_cache_hits(self):
        """Within-batch duplicate points keep SimulationCache counters
        byte-identical to the serial loop: the first occurrence simulates,
        the rest are answered (and counted) as cache hits.
        """
        requests = list(small_plan())
        requests = requests + [requests[0], requests[0]]
        serial_pipeline = Pipeline()
        serial = [serial_pipeline.evaluate(r) for r in requests]
        batch_pipeline = Pipeline()
        batched = batch_pipeline.evaluate_batch(requests)
        assert batched == serial
        assert counters(batch_pipeline.stats) == counters(serial_pipeline.stats)
        assert batch_pipeline.sim_cache.hits == serial_pipeline.sim_cache.hits
        assert batch_pipeline.sim_cache.misses == serial_pipeline.sim_cache.misses

    def test_evaluate_batch_empty(self):
        assert Pipeline().evaluate_batch([]) == []


# ----------------------------------------------------------------------
# Simulation memoization
# ----------------------------------------------------------------------
def tiny_circuit(tag: str = "tiny") -> Circuit:
    circuit = Circuit(tag)
    q = circuit.add_register("q", 4)
    circuit.append(prep(q[0]))
    circuit.append(cnot(q[0], q[1]))
    circuit.append(cnot(q[2], q[3]))
    circuit.append(cnot(q[0], q[3]))
    return circuit


class TestSimulationCache:
    def test_memoized_simulate_matches_and_counts(self):
        circuit = tiny_circuit()
        placement = row_major_placement(list(range(4)))
        cache = SimulationCache()
        first = cache.simulate(circuit, placement)
        second = cache.simulate(circuit, placement)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        assert first.latency == simulate(circuit, placement).latency

    def test_one_shot_gate_iterator_is_materialized(self):
        """A generator of gates must not be consumed by fingerprinting."""
        circuit = tiny_circuit()
        placement = row_major_placement(list(range(4)))
        cache = SimulationCache()
        from_iterator = cache.simulate(iter(circuit.gates), placement)
        reference = simulate(circuit, placement)
        assert from_iterator.latency == reference.latency
        # The cached entry must serve the equivalent list-based call too.
        assert cache.simulate(list(circuit.gates), placement) is from_iterator

    def test_key_distinguishes_config_and_placement(self):
        circuit = tiny_circuit()
        placement = row_major_placement(list(range(4)))
        other_placement = row_major_placement([3, 2, 1, 0])
        base = simulation_cache_key(circuit, placement)
        assert simulation_cache_key(circuit, placement) == base
        assert simulation_cache_key(circuit, other_placement) != base
        assert (
            simulation_cache_key(
                circuit, placement, SimulatorConfig(max_candidates=5)
            )
            != base
        )

    def test_fingerprint_is_content_based(self):
        assert circuit_fingerprint(tiny_circuit("a")) == circuit_fingerprint(
            tiny_circuit("b")
        )
        changed = tiny_circuit()
        changed.append(cnot(0, 2))
        assert circuit_fingerprint(changed) != circuit_fingerprint(tiny_circuit())

    def test_lru_bound(self):
        cache = SimulationCache(max_entries=1)
        circuit = tiny_circuit()
        cache.simulate(circuit, row_major_placement(list(range(4))))
        cache.simulate(circuit, row_major_placement([3, 2, 1, 0]))
        assert len(cache) == 1
        with pytest.raises(ValueError):
            SimulationCache(max_entries=0)

    def test_pipeline_counts_sim_cache_hits(self):
        pipeline = Pipeline()
        request = EvaluationRequest(method="linear", capacity=2)
        first = pipeline.evaluate(request)
        second = pipeline.evaluate(request)
        assert second == first
        assert pipeline.stats.sim_cache_hits == 1

    def test_stats_snapshot_delta(self):
        stats = PipelineStats(factory_builds=3, cache_hits=2, evaluations=5)
        snap = stats.snapshot()
        stats.factory_builds += 1
        stats.sim_cache_hits += 4
        delta = stats.delta(snap)
        assert delta == PipelineStats(
            factory_builds=1, cache_hits=0, evaluations=0, sim_cache_hits=4
        )

    def test_phase_seconds_attribute_wall_time_to_the_right_layer(self):
        """build/map/sim phase timers tick exactly when their phase runs."""
        pipeline = Pipeline()
        request = EvaluationRequest(method="linear", capacity=2)
        pipeline.evaluate(request)
        first = pipeline.stats.snapshot()
        assert first.build_seconds > 0.0  # factory built on the cold path
        assert first.map_seconds > 0.0
        assert first.sim_seconds > 0.0
        # A repeat of the same request hits the factory cache (no build
        # time) but still places and answers from the simulation cache.
        pipeline.evaluate(request)
        delta = pipeline.stats.delta(first)
        assert delta.build_seconds == 0.0
        assert delta.map_seconds > 0.0

    def test_phase_seconds_flow_through_executor_stats(self):
        plan = small_plan()
        result = SweepExecutor().run(plan)
        stats = result.stats
        assert stats.build_seconds > 0.0
        assert stats.map_seconds > 0.0
        assert stats.sim_seconds > 0.0
        payload = stats.to_dict()
        for key in ("build_seconds", "map_seconds", "sim_seconds"):
            assert payload[key] == getattr(stats, key)
        restored = ExecutorStats.from_dict(json.loads(json.dumps(payload)))
        assert restored == stats


# ----------------------------------------------------------------------
# Router fast path
# ----------------------------------------------------------------------
class TestRouterPlanCache:
    def test_pair_plans_are_cached_and_stable(self):
        placement = row_major_placement(list(range(4)))
        mesh = Mesh.from_placement(
            placement.positions, width=placement.width, height=placement.height
        )
        router = BraidRouter(mesh)
        fresh = BraidRouter(mesh)
        first = router.route_pair(0, 3, frozenset())
        assert len(router._pair_plans) == 1
        again = router.route_pair(0, 3, frozenset())
        assert len(router._pair_plans) == 1
        assert first.cells == again.cells
        assert first.cells == fresh.route_pair(0, 3, frozenset()).cells

    def test_blocked_first_candidate_falls_through(self):
        placement = row_major_placement(list(range(4)))
        mesh = Mesh.from_placement(
            placement.positions, width=placement.width, height=placement.height
        )
        router = BraidRouter(mesh)
        source = mesh.qubit_cell(0)
        target = mesh.qubit_cell(3)
        candidates, _ = router._pair_plan(source, target)
        assert len(candidates) >= 2
        first_cells, second_cells = candidates[0][1], candidates[1][1]
        # Lock a cell unique to the preferred shape: the cached plan must
        # fall through to the alternative candidate.
        blocked_cell = next(iter(first_cells - second_cells))
        alternative = router.route_pair(0, 3, frozenset({blocked_cell}))
        assert alternative is not None
        assert blocked_cell not in alternative.cells
        assert alternative.cells == second_cells


# ----------------------------------------------------------------------
# Experiment runners and the bench command
# ----------------------------------------------------------------------
class TestWorkersIntegration:
    def test_table1_workers_identical(self):
        from repro.experiments import table1_volumes

        serial = table1_volumes.run(levels=1, capacities=[2])
        parallel = table1_volumes.run(levels=1, capacities=[2], workers=2)
        assert parallel.to_dict() == serial.to_dict()

    def test_fig7a_workers_identical(self):
        from repro.experiments import fig7_scaling

        serial = fig7_scaling.run_single_level(capacities=[2])
        parallel = fig7_scaling.run_single_level(capacities=[2], workers=2)
        assert parallel.to_dict() == serial.to_dict()

    def test_sweep_experiments_declare_workers_param(self):
        from repro.api import get_experiment

        for name in ("fig7a", "fig7b", "fig10-single", "fig10-two",
                     "table1-level1", "table1-level2"):
            params = {param.name for param in get_experiment(name).params}
            assert "workers" in params, name


class TestBenchCommand:
    def test_bench_smoke_writes_record(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "BENCH_test.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--experiments",
                "table1-level1",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        record = json.loads(output.read_text())
        assert record["schema"] == "repro-msfu-bench/v1"
        assert record["smoke"] is True
        [entry] = record["experiments"]
        assert entry["experiment"] == "table1-level1"
        assert entry["wall_seconds"] > 0
        assert entry["sim_cycles"] > 0
        assert entry["evaluations"] > 0
        assert entry["cache"]["evaluations"] == entry["evaluations"]
        assert record["total_wall_seconds"] >= entry["wall_seconds"]

    def test_bench_workers_records_executor_stats(self, tmp_path):
        from repro.cli import main

        output = tmp_path / "BENCH_workers.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--workers",
                "2",
                "--experiments",
                "fig7a",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        record = json.loads(output.read_text())
        [entry] = record["experiments"]
        assert entry["workers"] == 2
        assert entry["cache"]["workers"] == 2
        assert entry["cache"]["requests"] == entry["evaluations"]


class TestSimCongestionBench:
    def test_bench_smoke_sim_congestion(self, tmp_path):
        """The sim-congestion case emits engine-vs-reference timings."""
        from repro.cli import main

        output = tmp_path / "BENCH_sim.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--experiments",
                "sim-congestion",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        record = json.loads(output.read_text())
        [entry] = record["experiments"]
        assert entry["experiment"] == "sim-congestion"
        sim = entry["sim"]
        assert sim["cases"], "at least one congestion case must run"
        for case in sim["cases"]:
            assert case["mask_seconds"] >= 0
            assert case["reference_seconds"] >= 0
            assert case["stall_events"] >= case["wakeups"] >= 0
        assert sim["mask_total_seconds"] > 0
        assert sim["reference_total_seconds"] > 0

    def test_bench_default_experiments_include_sim_congestion(self):
        from repro.cli import DEFAULT_BENCH_EXPERIMENTS, SIM_CONGESTION_BENCH

        assert SIM_CONGESTION_BENCH in DEFAULT_BENCH_EXPERIMENTS


# ----------------------------------------------------------------------
# The progress callback (the sweep service's window into a running plan)
# ----------------------------------------------------------------------
class TestSweepProgress:
    def collect(self, plan, **executor_kwargs):
        events = []
        result = SweepExecutor(**executor_kwargs).run(plan, progress=events.append)
        return result, events

    def test_one_event_per_unique_request_covering_every_plan_index(self):
        plan = small_plan()
        result, events = self.collect(plan)
        assert len(events) == len(plan)  # no duplicates in the grid
        assert all(isinstance(event, SweepProgress) for event in events)
        assert all(event.total == len(plan) for event in events)
        covered = sorted(i for event in events for i in event.plan_indices)
        assert covered == list(range(len(plan)))

    def test_done_is_monotone_and_reaches_total(self):
        plan = small_plan()
        _, events = self.collect(plan)
        done = [event.done for event in events]
        assert done == sorted(done)
        assert done[-1] == len(plan)
        # Each event advances done by exactly the indices it resolves.
        deltas = [b - a for a, b in zip([0] + done, done)]
        assert deltas == [len(event.plan_indices) for event in events]

    def test_event_carries_the_resolving_evaluation(self):
        plan = small_plan()
        result, events = self.collect(plan)
        for event in events:
            for index in event.plan_indices:
                assert result.evaluations[index] == event.evaluation
                assert plan.requests[index] == event.request

    def test_duplicates_resolve_with_their_first_occurrence(self):
        request = EvaluationRequest(method="linear", capacity=2)
        other = EvaluationRequest(method="linear", capacity=3)
        plan = SweepPlan.from_requests([request, other, request, request])
        result, events = self.collect(plan)
        assert len(events) == 2  # one per unique request
        [dup_event] = [e for e in events if len(e.plan_indices) > 1]
        assert dup_event.plan_indices == (0, 2, 3)
        assert result.stats.duplicate_hits == 2

    def test_sources_match_stats_on_a_resumed_run(self, tmp_path):
        store = tmp_path / "store"
        plan = small_plan()
        seeded = SweepPlan.from_requests(list(plan)[:2])
        SweepExecutor(store=store).run(seeded)

        result, events = self.collect(plan, store=store, resume=True)
        by_source = {"store": 0, "evaluated": 0}
        for event in events:
            by_source[event.source] += 1
        assert by_source["store"] == result.stats.store_hits == 2
        assert by_source["evaluated"] == result.stats.evaluations == 2

    def test_parallel_run_fires_the_same_events(self, tmp_path):
        plan = small_plan()
        serial_result, serial_events = self.collect(plan)
        parallel_result, parallel_events = self.collect(
            plan, workers=2, store=tmp_path / "store"
        )
        assert len(parallel_events) == len(serial_events)
        assert [e.to_dict() for e in parallel_result.evaluations] == [
            e.to_dict() for e in serial_result.evaluations
        ]
        covered = sorted(
            i for event in parallel_events for i in event.plan_indices
        )
        assert covered == list(range(len(plan)))
        assert max(event.done for event in parallel_events) == len(plan)

    def test_callback_errors_abort_the_run(self):
        def explode(event):
            raise RuntimeError("observer failure")

        with pytest.raises(RuntimeError, match="observer failure"):
            SweepExecutor().run(small_plan(), progress=explode)
