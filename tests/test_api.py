"""Tests for the pluggable API: registries, pipeline caching, JSON CLI."""

import json

import pytest

import repro.api.pipeline as pipeline_module
from repro.api import (
    EvaluationRequest,
    FactoryEvaluation,
    Mapper,
    ParamSpec,
    Pipeline,
    RegistryError,
    available_experiments,
    available_mappers,
    capacity_sweep,
    get_experiment,
    get_mapper,
    register_experiment,
    register_mapper,
    to_json,
    unregister_experiment,
    unregister_mapper,
)
from repro.cli import build_parser, main
from repro.mapping import Placement, grid_dimensions_for
from repro.mapping.stitching import StitchedMapping


class SnakeMapper(Mapper):
    """Row-major snake layout used as the custom-mapper fixture."""

    name = "snake"

    def place(self, factory, *, seed=0, context=None):
        qubits = list(range(factory.circuit.num_qubits))
        height, width = grid_dimensions_for(len(qubits))
        placement = Placement(width=width, height=height)
        for index, qubit in enumerate(qubits):
            row, col = divmod(index, width)
            placement.place(qubit, (row, width - 1 - col if row % 2 else col))
        return placement


@pytest.fixture
def snake_mapper():
    register_mapper(SnakeMapper)
    yield "snake"
    unregister_mapper("snake")


class TestMapperRegistry:
    def test_builtins_registered(self):
        assert set(available_mappers()) >= {
            "random",
            "linear",
            "force_directed",
            "graph_partition",
            "hierarchical_stitching",
        }

    def test_unknown_mapper_error_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_mapper("does_not_exist")
        message = str(excinfo.value)
        assert "does_not_exist" in message
        assert "linear" in message and "hierarchical_stitching" in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            register_mapper(SnakeMapper, name="linear")

    def test_failed_registration_leaves_instance_untouched(self):
        instance = SnakeMapper()
        with pytest.raises(RegistryError):
            register_mapper(instance, name="linear")
        assert instance.name == "snake"

    def test_experiments_view_keeps_dict_semantics(self):
        from repro.experiments import EXPERIMENTS

        assert "nope" not in EXPERIMENTS
        assert EXPERIMENTS.get("nope") is None
        with pytest.raises(KeyError):
            EXPERIMENTS["nope"]

    def test_function_mapper_registration(self):
        @register_mapper(name="reversed_rows")
        def reversed_rows(factory, *, seed=0, context=None):
            qubits = list(reversed(range(factory.circuit.num_qubits)))
            height, width = grid_dimensions_for(len(qubits))
            placement = Placement(width=width, height=height)
            for index, qubit in enumerate(qubits):
                placement.place(qubit, (index // width, index % width))
            return placement

        try:
            evaluation = Pipeline().evaluate(
                EvaluationRequest(method="reversed_rows", capacity=2)
            )
            assert evaluation.latency > 0
        finally:
            unregister_mapper("reversed_rows")


class TestCustomMapperEndToEnd:
    def test_pipeline_evaluates_custom_mapper(self, snake_mapper):
        evaluation = Pipeline().evaluate(
            EvaluationRequest(method=snake_mapper, capacity=4)
        )
        assert evaluation.method == "snake"
        assert evaluation.latency >= evaluation.critical_latency
        assert evaluation.volume == evaluation.latency * evaluation.area

    def test_capacity_sweep_picks_up_custom_mapper(self, snake_mapper):
        results = capacity_sweep(["linear", snake_mapper], [2, 4], levels=1)
        assert [(r.method, r.capacity) for r in results] == [
            ("linear", 2),
            ("snake", 2),
            ("linear", 4),
            ("snake", 4),
        ]


class TestPipelineCaching:
    def test_sweep_builds_each_configuration_once(self, monkeypatch):
        builds = []
        real_build = pipeline_module.build_factory

        def counting_build(spec, **kwargs):
            builds.append((spec.k, spec.levels, kwargs.get("reuse_policy")))
            return real_build(spec, **kwargs)

        monkeypatch.setattr(pipeline_module, "build_factory", counting_build)
        pipeline = Pipeline()
        methods = [
            "random",
            "linear",
            "force_directed",
            "graph_partition",
            "hierarchical_stitching",
        ]
        pipeline.sweep(methods, [4], levels=2)
        # One base factory for all five mappers (hierarchical stitching's
        # port-reassignment rebuild goes through repro.mapping.stitching,
        # not the pipeline's builder).
        assert len(builds) == 1
        assert pipeline.stats.factory_builds == 1
        assert pipeline.stats.cache_hits == len(methods) - 1

        pipeline.sweep(methods, [4], levels=2, reuse=True)
        assert pipeline.stats.factory_builds == 2  # reuse=True is a new config

    def test_cache_is_lru_bounded(self):
        pipeline = Pipeline(cache_size=1)
        pipeline.factory(2, 1)
        pipeline.factory(4, 1)
        pipeline.factory(2, 1)
        assert pipeline.stats.factory_builds == 3
        assert pipeline.stats.cache_hits == 0

    def test_stitched_mapping_used_for_hierarchical(self):
        pipeline = Pipeline()
        factory = pipeline.factory(4, levels=2)
        outcome = get_mapper("hierarchical_stitching").place(factory, seed=0)
        assert isinstance(outcome, StitchedMapping)
        # The stitched factory is a port-reassigned rebuild, not the shared
        # base instance (which must stay read-only).
        assert outcome.factory is not factory

    def test_fd_stats_attributed_only_to_pipeline_refinements(self):
        from repro.graphs import interaction_graph
        from repro.mapping import (
            ForceDirectedConfig,
            force_directed_refine,
            linear_factory_placement,
            take_refine_stats,
        )

        pipeline = Pipeline()
        factory = pipeline.factory(4, 1)
        graph = interaction_graph(factory.circuit)
        take_refine_stats()
        # A refinement outside the pipeline, left pending unharvested.
        force_directed_refine(
            graph,
            linear_factory_placement(factory),
            ForceDirectedConfig(sweeps=7, seed=0),
        )
        pipeline.evaluate(EvaluationRequest(method="force_directed", capacity=4))
        # Only the pipeline's own refinement (default 30 sweeps) counts —
        # the pending 7-sweep outsider must not be attributed.
        assert pipeline.stats.fd_sweeps == 30
        assert pipeline.stats.fd_moves_accepted > 0
        # Non-FD mappers attribute nothing.
        before = pipeline.stats.fd_sweeps
        pipeline.evaluate(EvaluationRequest(method="linear", capacity=4))
        assert pipeline.stats.fd_sweeps == before


class TestResultsSerialization:
    def test_factory_evaluation_round_trip(self):
        evaluation = Pipeline().evaluate(
            EvaluationRequest(method="linear", capacity=2)
        )
        restored = FactoryEvaluation.from_dict(json.loads(to_json(evaluation)))
        assert restored == evaluation

    def test_evaluation_request_round_trip(self):
        from repro.mapping.force_directed import ForceDirectedConfig
        from repro.routing import SimulatorConfig

        request = EvaluationRequest(
            method="force_directed",
            capacity=4,
            levels=2,
            reuse=True,
            seed=7,
            fd_config=ForceDirectedConfig(sweeps=5, seed=7),
            sim_config=SimulatorConfig(max_candidates=1),
            options={"note": "round-trip"},
        )
        restored = EvaluationRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert restored.method == request.method
        assert restored.fd_config == request.fd_config
        assert restored.sim_config == request.sim_config
        assert restored.options == {"note": "round-trip"}

    def test_experiment_results_round_trip(self):
        from repro.experiments import fig7_scaling, table1_volumes

        fig7 = fig7_scaling.run_single_level(capacities=[2])
        assert fig7_scaling.Fig7Result.from_dict(
            json.loads(to_json(fig7))
        ).series() == fig7.series()

        table1 = table1_volumes.run(levels=1, capacities=[2])
        restored = table1_volumes.Table1Result.from_dict(
            json.loads(to_json(table1))
        )
        assert restored.volumes == table1.volumes
        assert restored.evaluations == table1.evaluations


class TestExperimentRegistry:
    def test_unknown_experiment_error_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_experiment("nope")
        assert "fig6" in str(excinfo.value)

    def test_register_experiment_decorator_and_cli(self, capsys):
        @register_experiment(
            "mini-study",
            params=(ParamSpec("capacity", "int", default=2, help="factory size"),),
            formatter=lambda result: f"mini volume={result['volume']}",
            description="tiny registration test",
        )
        def run_mini(capacity=2, seed=0):
            point = Pipeline().evaluate(
                EvaluationRequest(method="linear", capacity=capacity, seed=seed)
            )
            return {"volume": point.volume}

        try:
            assert "mini-study" in available_experiments()
            assert main(["run", "mini-study", "--capacity", "2"]) == 0
            assert "mini volume=" in capsys.readouterr().out
        finally:
            unregister_experiment("mini-study")

    def test_param_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ParamSpec("x", "complex")


class TestCliJson:
    def test_run_json_round_trips(self, capsys):
        assert main(["run", "table1-level1", "--capacities", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1-level1"
        volumes = payload["result"]["volumes"]
        assert "critical" in volumes and "random" in volumes
        from repro.experiments.table1_volumes import Table1Result

        restored = Table1Result.from_dict(payload["result"])
        assert restored.volumes["random"][2] > 0

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in listing} >= {"fig6", "table1-level1"}

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        assert (
            main(
                ["run", "fig7a", "--capacities", "2", "--json", "--output", str(target)]
            )
            == 0
        )
        assert capsys.readouterr().out == ""
        payload = json.loads(target.read_text())
        assert payload["experiment"] == "fig7a"

    def test_options_before_experiment_name_still_work(self, capsys):
        # The pre-subparser CLI accepted `run --seed 1 fig6`; keep it valid.
        assert main(["run", "--num-mappings", "4", "fig6"]) == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_unregister_builtin_as_first_registry_operation(self):
        # Must load the built-ins lazily like the lookup functions do; run in
        # a fresh interpreter so it really is the first registry operation.
        import os
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        code = (
            "from repro.api import unregister_experiment, available_experiments\n"
            "unregister_experiment('fig6')\n"
            "assert 'fig6' not in available_experiments()\n"
            "print('ok')\n"
        )
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_per_experiment_options_are_scoped(self):
        parser = build_parser()
        # --num-mappings belongs to fig6, not fig7a.
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig7a", "--num-mappings", "4"])
        args = parser.parse_args(["run", "fig6", "--num-mappings", "4"])
        assert args.num_mappings == 4


class TestSimStallStats:
    """Pipeline/executor aggregation of the simulator's stall counters."""

    def test_pipeline_aggregates_sim_counters(self):
        from repro.api import EvaluationRequest, Pipeline

        pipeline = Pipeline()
        request = EvaluationRequest(method="random", capacity=4)
        pipeline.evaluate(request)
        stats = pipeline.stats
        # The random mapping of a K=4 factory stalls; whatever the exact
        # values, the three counters must satisfy the engine relations.
        assert stats.sim_distinct_stalls > 0
        assert stats.sim_wakeups <= stats.sim_stall_events
        before = stats.snapshot()
        # A cached re-evaluation reports the same workload counters again.
        pipeline.evaluate(request)
        delta = pipeline.stats.delta(before)
        assert delta.sim_cache_hits == 1
        assert delta.sim_stall_events == before.sim_stall_events
        assert delta.sim_distinct_stalls == before.sim_distinct_stalls
        assert delta.sim_wakeups == before.sim_wakeups

    def test_executor_stats_round_trip_sim_counters(self):
        from repro.api import SweepExecutor, SweepPlan

        plan = SweepPlan.from_grid(methods=("random",), capacities=(4,))
        result = SweepExecutor(workers=1).run(plan)
        stats = result.stats.to_dict()
        assert stats["sim_distinct_stalls"] > 0
        assert stats["sim_wakeups"] <= stats["sim_stall_events"]

    def test_evaluation_result_carries_counters(self):
        from repro.analysis.volume import evaluate_mapping
        from repro.circuits import cnot
        from repro.routing import SimulatorConfig

        placement = Placement(
            width=6,
            height=1,
            positions={0: (0, 0), 1: (0, 3), 2: (0, 1), 3: (0, 4)},
        )
        evaluation = evaluate_mapping(
            [cnot(0, 1), cnot(2, 3)], placement, SimulatorConfig(max_candidates=1)
        )
        assert evaluation.stall_events == 1
        assert evaluation.distinct_stalls == 1
        assert evaluation.wakeups == 1
