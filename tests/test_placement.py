"""Unit tests for placement primitives (repro.mapping.placement)."""

import pytest

from repro.mapping import (
    Placement,
    grid_dimensions_for,
    pack_placements,
    row_major_placement,
)


class TestPlacement:
    def test_basic_placement(self):
        placement = Placement(width=3, height=2, positions={0: (0, 0), 1: (1, 2)})
        assert placement.area == 6
        assert placement.num_qubits == 2
        assert placement[1] == (1, 2)
        assert 0 in placement and 5 not in placement

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            Placement(width=2, height=2, positions={0: (2, 0)})

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Placement(width=2, height=2, positions={0: (0, 0), 1: (0, 0)})

    def test_degenerate_grid_rejected(self):
        with pytest.raises(ValueError):
            Placement(width=0, height=3)

    def test_place_and_move(self):
        placement = Placement(width=3, height=3)
        placement.place(0, (0, 0))
        placement.place(1, (1, 1))
        placement.move(0, (2, 2))
        assert placement[0] == (2, 2)

    def test_move_onto_occupied_swaps(self):
        placement = Placement(width=3, height=3, positions={0: (0, 0), 1: (1, 1)})
        placement.move(0, (1, 1))
        assert placement[0] == (1, 1)
        assert placement[1] == (0, 0)

    def test_place_onto_occupied_raises(self):
        placement = Placement(width=3, height=3, positions={0: (0, 0)})
        with pytest.raises(ValueError):
            placement.place(1, (0, 0))

    def test_swap(self):
        placement = Placement(width=2, height=2, positions={0: (0, 0), 1: (1, 1)})
        placement.swap(0, 1)
        assert placement[0] == (1, 1)

    def test_free_cells(self):
        placement = Placement(width=2, height=2, positions={0: (0, 0)})
        assert (0, 0) not in placement.free_cells()
        assert len(placement.free_cells()) == 3

    def test_copy_is_independent(self):
        placement = Placement(width=2, height=2, positions={0: (0, 0)})
        clone = placement.copy()
        clone.move(0, (1, 1))
        assert placement[0] == (0, 0)

    def test_translated(self):
        placement = Placement(width=2, height=2, positions={0: (0, 0)})
        shifted = placement.translated(3, 4)
        assert shifted[0] == (3, 4)
        assert shifted.height >= 4 and shifted.width >= 5

    def test_as_float_positions(self):
        placement = Placement(width=2, height=2, positions={0: (1, 0)})
        assert placement.as_float_positions() == {0: (1.0, 0.0)}

    def test_occupied_cells_inverse(self):
        placement = Placement(width=2, height=2, positions={5: (0, 1)})
        assert placement.occupied_cells() == {(0, 1): 5}


class TestOccupiedIndex:
    """The occupied-cells index is maintained incrementally and stays exact."""

    def _assert_index_consistent(self, placement):
        assert placement.occupied_cells() == {
            cell: qubit for qubit, cell in placement.positions.items()
        }

    def test_occupant_lookup(self):
        placement = Placement(width=3, height=3, positions={0: (0, 0), 1: (2, 1)})
        assert placement.occupant((0, 0)) == 0
        assert placement.occupant((2, 1)) == 1
        assert placement.occupant((1, 1)) is None

    def test_index_tracks_place_move_swap(self):
        placement = Placement(width=4, height=4)
        placement.place(0, (0, 0))
        placement.place(1, (1, 1))
        self._assert_index_consistent(placement)
        placement.move(0, (2, 2))
        assert placement.occupant((0, 0)) is None
        assert placement.occupant((2, 2)) == 0
        placement.move(1, (2, 2))  # swaps 0 and 1
        assert placement.occupant((2, 2)) == 1
        assert placement.occupant((1, 1)) == 0
        placement.swap(0, 1)
        self._assert_index_consistent(placement)

    def test_replacing_a_qubit_frees_its_old_cell(self):
        placement = Placement(width=3, height=3, positions={0: (0, 0)})
        placement.place(0, (1, 1))
        assert placement.occupant((0, 0)) is None
        assert placement.occupant((1, 1)) == 0
        self._assert_index_consistent(placement)

    def test_move_to_own_cell_is_a_noop(self):
        placement = Placement(width=3, height=3, positions={0: (1, 1)})
        placement.move(0, (1, 1))
        assert placement.occupant((1, 1)) == 0
        self._assert_index_consistent(placement)

    def test_occupied_cells_returns_a_copy(self):
        placement = Placement(width=2, height=2, positions={0: (0, 0)})
        view = placement.occupied_cells()
        view[(1, 1)] = 99
        assert placement.occupant((1, 1)) is None

    def test_validate_resyncs_after_direct_mutation(self):
        placement = Placement(width=3, height=3, positions={0: (0, 0)})
        placement.positions[0] = (2, 2)  # direct mutation bypasses the index
        placement.validate()
        assert placement.occupant((2, 2)) == 0
        assert placement.occupant((0, 0)) is None

    def test_randomized_sequence_stays_consistent(self):
        import random

        rng = random.Random(0)
        placement = Placement(
            width=5, height=5, positions={q: (q // 5, q % 5) for q in range(12)}
        )
        for _ in range(200):
            qubit = rng.randrange(12)
            target = (rng.randrange(5), rng.randrange(5))
            placement.move(qubit, target)
        self._assert_index_consistent(placement)
        placement.validate()


class TestGridDimensions:
    def test_dimensions_hold_all_qubits(self):
        for count in (1, 5, 20, 53, 100):
            height, width = grid_dimensions_for(count)
            assert height * width >= count

    def test_slack_increases_area(self):
        tight = grid_dimensions_for(50, slack=1.0)
        loose = grid_dimensions_for(50, slack=2.0)
        assert loose[0] * loose[1] > tight[0] * tight[1]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            grid_dimensions_for(0)
        with pytest.raises(ValueError):
            grid_dimensions_for(5, slack=0.5)


class TestRowMajor:
    def test_row_major_order(self):
        placement = row_major_placement([10, 11, 12, 13], width=2, height=2)
        assert placement[10] == (0, 0)
        assert placement[11] == (0, 1)
        assert placement[12] == (1, 0)
        assert placement[13] == (1, 1)

    def test_auto_dimensions(self):
        placement = row_major_placement(list(range(30)))
        assert placement.num_qubits == 30

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            row_major_placement([0, 1, 2, 3, 4], width=2, height=2)


class TestPackPlacements:
    def test_pack_two_blocks(self):
        first = Placement(width=2, height=2, positions={0: (0, 0), 1: (1, 1)})
        second = Placement(width=2, height=2, positions={2: (0, 0), 3: (0, 1)})
        combined, origins = pack_placements([first, second], columns=2, gap=1)
        assert combined.num_qubits == 4
        assert origins[0] == (0, 0)
        assert origins[1] == (0, 3)
        assert combined[2] == (0, 3)

    def test_pack_rejects_shared_qubits(self):
        first = Placement(width=1, height=1, positions={0: (0, 0)})
        second = Placement(width=1, height=1, positions={0: (0, 0)})
        with pytest.raises(ValueError):
            pack_placements([first, second])

    def test_pack_requires_blocks(self):
        with pytest.raises(ValueError):
            pack_placements([])


class TestFingerprint:
    """The memoized placement fingerprint used by simulation cache keys."""

    def test_content_and_identity(self):
        placement = Placement(width=3, height=2, positions={1: (0, 2), 0: (1, 1)})
        fp = placement.fingerprint()
        assert fp == (3, 2, ((0, (1, 1)), (1, (0, 2))))
        # Memoized: repeated probes return the identical tuple object.
        assert placement.fingerprint() is fp

    def test_invalidated_by_place(self):
        placement = Placement(width=3, height=2, positions={0: (0, 0)})
        before = placement.fingerprint()
        placement.place(1, (1, 1))
        after = placement.fingerprint()
        assert after != before
        assert after == (3, 2, ((0, (0, 0)), (1, (1, 1))))

    def test_invalidated_by_swap_and_move(self):
        placement = Placement(
            width=3, height=2, positions={0: (0, 0), 1: (0, 1)}
        )
        placement.fingerprint()
        placement.swap(0, 1)
        assert placement.fingerprint()[2] == ((0, (0, 1)), (1, (0, 0)))
        placement.move(0, (1, 2))
        assert placement.fingerprint()[2] == ((0, (1, 2)), (1, (0, 0)))

    def test_direct_mutation_resynced_by_validate(self):
        placement = Placement(width=3, height=2, positions={0: (0, 0)})
        placement.fingerprint()
        placement.positions[0] = (1, 1)  # bypasses the mutation helpers
        placement.validate()
        assert placement.fingerprint()[2] == ((0, (1, 1)),)

    def test_copy_has_independent_fingerprint(self):
        placement = Placement(width=3, height=2, positions={0: (0, 0)})
        clone = placement.copy()
        clone.place(0, (1, 1))
        assert placement.fingerprint() != clone.fingerprint()
