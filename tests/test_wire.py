"""Tests for the validating wire-format decoders (:mod:`repro.service.wire`).

The contract: malformed ``EvaluationRequest``/``SweepPlan`` JSON raises a
:class:`WireFormatError` *naming the offending field* — never a raw
``KeyError``/``TypeError`` from deep inside ``from_dict`` — so the service
can answer a useful 400 and the CLI a useful exit-2 message.  Well-formed
payloads decode exactly as ``from_dict`` would.
"""

from __future__ import annotations

import json

import pytest

from repro.api import EvaluationRequest, SweepPlan
from repro.mapping.force_directed import ForceDirectedConfig
from repro.routing.simulator import SimulatorConfig
from repro.service.wire import (
    WireFormatError,
    decode_evaluation_request,
    decode_sweep_plan,
    validate_mapper_name,
    validate_plan_mappers,
)


def wire_request(**overrides) -> dict:
    payload = EvaluationRequest(method="linear", capacity=2).to_dict()
    payload.update(overrides)
    return payload


class TestDecodeEvaluationRequest:
    def test_round_trip_matches_from_dict(self):
        request = EvaluationRequest(
            method="force_directed",
            capacity=4,
            levels=2,
            reuse=True,
            seed=3,
            fd_config=ForceDirectedConfig(seed=7),
            sim_config=SimulatorConfig(max_candidates=3),
            options={"k": 1},
        )
        data = json.loads(json.dumps(request.to_dict()))
        assert decode_evaluation_request(data) == EvaluationRequest.from_dict(data)

    def test_minimal_payload_decodes(self):
        request = decode_evaluation_request({"method": "linear", "capacity": 2})
        assert request == EvaluationRequest(method="linear", capacity=2)

    @pytest.mark.parametrize(
        "payload, field",
        [
            ([1, 2], None),
            ("linear", None),
            ({"capacity": 2}, "method"),
            ({"method": "", "capacity": 2}, "method"),
            ({"method": 7, "capacity": 2}, "method"),
            ({"method": "linear"}, "capacity"),
            ({"method": "linear", "capacity": "big"}, "capacity"),
            ({"method": "linear", "capacity": True}, "capacity"),
            ({"method": "linear", "capacity": 0}, "capacity"),
            (wire_request(levels=0), "levels"),
            (wire_request(levels="two"), "levels"),
            (wire_request(reuse="yes"), "reuse"),
            (wire_request(seed=1.5), "seed"),
            (wire_request(options=[1]), "options"),
            (wire_request(sim_config=5), "sim_config"),
            (wire_request(mehtod="linear"), "mehtod"),
        ],
    )
    def test_malformed_payload_names_the_field(self, payload, field):
        with pytest.raises(WireFormatError) as excinfo:
            decode_evaluation_request(payload)
        assert excinfo.value.field == field
        if field:
            assert field in str(excinfo.value)

    def test_unknown_key_lists_valid_keys(self):
        with pytest.raises(WireFormatError) as excinfo:
            decode_evaluation_request(wire_request(capcity=2))
        assert "'capcity'" in str(excinfo.value)
        assert "capacity" in str(excinfo.value)

    def test_bad_nested_config_is_wire_error_not_typeerror(self):
        payload = wire_request(fd_config={"no_such_knob": 1})
        with pytest.raises(WireFormatError):
            decode_evaluation_request(payload)

    def test_field_prefix_appears_in_nested_messages(self):
        with pytest.raises(WireFormatError) as excinfo:
            decode_evaluation_request({"method": "linear"}, field_prefix="requests[3]")
        assert excinfo.value.field == "requests[3].capacity"

    def test_error_payload_shape(self):
        with pytest.raises(WireFormatError) as excinfo:
            decode_evaluation_request({"method": "linear"})
        body = excinfo.value.to_dict()
        assert body["error"]["field"] == "capacity"
        assert "capacity" in body["error"]["message"]


class TestDecodeSweepPlan:
    def test_round_trip(self):
        plan = SweepPlan.from_grid(
            methods=("linear", "graph_partition"), capacities=(2, 3)
        )
        decoded = decode_sweep_plan(json.loads(json.dumps(plan.to_dict())))
        assert decoded == plan

    @pytest.mark.parametrize(
        "payload, field",
        [
            ([1, 2, 3], None),
            ({}, "requests"),
            ({"requests": {}}, "requests"),
            ({"requests": []}, "requests"),
            ({"requests": [{"method": "linear"}]}, "requests[0].capacity"),
            (
                {"requests": [wire_request(), {"method": "linear", "capacity": "x"}]},
                "requests[1].capacity",
            ),
        ],
    )
    def test_malformed_plan_names_the_field(self, payload, field):
        with pytest.raises(WireFormatError) as excinfo:
            decode_sweep_plan(payload)
        assert excinfo.value.field == field


class TestMapperValidation:
    def test_known_names_pass(self):
        validate_mapper_name("linear")
        validate_plan_mappers(
            SweepPlan.from_grid(methods=("linear", "random"), capacities=(2,))
        )

    def test_unknown_name_lists_registered(self):
        with pytest.raises(WireFormatError) as excinfo:
            validate_mapper_name("no-such-mapper")
        message = str(excinfo.value)
        assert "no-such-mapper" in message
        assert "linear" in message  # the registered names are listed

    def test_unknown_plan_mapper_lists_registered(self):
        plan = SweepPlan.from_grid(methods=("linear", "typo"), capacities=(2,))
        with pytest.raises(WireFormatError) as excinfo:
            validate_plan_mappers(plan)
        message = str(excinfo.value)
        assert "'typo'" in message and "linear" in message
