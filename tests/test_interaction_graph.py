"""Unit tests for interaction-graph construction (repro.graphs.interaction)."""

from repro.circuits import Circuit, barrier, cnot, cxx, h, inject_t
from repro.graphs import (
    degree_statistics,
    interaction_edges,
    interaction_graph,
    merge_graphs,
    subgraph_for_qubits,
)


def build_circuit():
    circuit = Circuit()
    circuit.add_register("q", 6)
    circuit.append(h(0))
    circuit.append(cnot(0, 1))
    circuit.append(cnot(0, 1))
    circuit.append(inject_t(2, 3))
    circuit.append(cxx(0, [2, 4]))
    circuit.append(barrier())
    circuit.append(cnot(4, 5))
    return circuit


class TestInteractionGraph:
    def test_all_circuit_qubits_are_vertices(self):
        graph = interaction_graph(build_circuit())
        assert set(graph.nodes()) == {0, 1, 2, 3, 4, 5}

    def test_repeated_interactions_accumulate_weight(self):
        graph = interaction_graph(build_circuit())
        assert graph[0][1]["weight"] == 2

    def test_edge_gate_indices_recorded(self):
        graph = interaction_graph(build_circuit())
        assert graph[0][1]["gates"] == [1, 2]

    def test_cxx_contributes_control_target_pairs(self):
        graph = interaction_graph(build_circuit())
        assert graph.has_edge(0, 2)
        assert graph.has_edge(0, 4)
        assert not graph.has_edge(2, 4)

    def test_barriers_add_no_edges(self):
        graph = interaction_graph([barrier([0, 1, 2])], include_qubits=[0, 1, 2])
        assert graph.number_of_edges() == 0

    def test_single_qubit_gates_add_no_edges(self):
        graph = interaction_graph([h(0)], include_qubits=[0])
        assert graph.number_of_edges() == 0

    def test_gate_list_input_adds_touched_vertices(self):
        graph = interaction_graph([cnot(3, 7)])
        assert set(graph.nodes()) == {3, 7}

    def test_include_qubits_forces_isolated_vertices(self):
        graph = interaction_graph([cnot(0, 1)], include_qubits=[0, 1, 9])
        assert 9 in graph
        assert graph.degree(9) == 0

    def test_interaction_edges_flat_list(self):
        edges = interaction_edges(build_circuit())
        assert edges.count((0, 1)) == 2
        assert (0, 2) in edges
        assert (4, 5) in edges

    def test_degree_statistics(self):
        stats = degree_statistics(interaction_graph(build_circuit()))
        assert stats["max"] >= stats["mean"] >= stats["min"]
        # Every qubit of the sample circuit participates in some interaction.
        assert stats["min"] >= 1.0
        assert stats["max"] >= 3.0  # qubit 0 talks to 1, 2 and 4

    def test_degree_statistics_empty_graph(self):
        import networkx as nx

        assert degree_statistics(nx.Graph()) == {"min": 0.0, "max": 0.0, "mean": 0.0}

    def test_subgraph_for_qubits_is_copy(self):
        graph = interaction_graph(build_circuit())
        sub = subgraph_for_qubits(graph, [0, 1])
        sub.add_edge(0, 1, weight=99)
        assert graph[0][1]["weight"] == 2

    def test_merge_graphs_sums_weights(self):
        g1 = interaction_graph([cnot(0, 1)])
        g2 = interaction_graph([cnot(0, 1), cnot(1, 2)])
        merged = merge_graphs([g1, g2])
        assert merged[0][1]["weight"] == 2
        assert merged.has_edge(1, 2)


class TestFactoryGraphs:
    def test_single_level_graph_connected_core(
        self, single_level_k4, k4_interaction_graph
    ):
        # Every raw state is consumed, so no qubit is isolated.
        assert all(deg > 0 for _q, deg in k4_interaction_graph.degree())

    def test_two_level_graph_includes_permutation_edges(self, two_level_cap4):
        graph = interaction_graph(two_level_cap4.circuit)
        producer_outputs = {
            e.producer_qubit for e in two_level_cap4.permutation_edges
        }
        # Each forwarded output must interact with a round-2 ancilla.
        round2_ancillas = {
            q for m in two_level_cap4.rounds[1] for q in m.anc_qubits
        }
        for output in producer_outputs:
            assert any(n in round2_ancillas for n in graph.neighbors(output))
