"""Cross-engine invariants of the batched simulator core.

:func:`repro.routing.simulate_batch` promises byte-identical
``SimulationResult.to_dict()`` output to per-point
:func:`repro.routing.simulate` (and, transitively through the parity
suite, to :func:`repro.routing.simulate_reference`) at **any** batch
size and grouping.  These tests pin the invariants that promise decomposes
into — batch-of-1 equals scalar, grouping/order independence, early
retirees not perturbing survivors, the C plan builder matching the pure
Python one — plus the engine-selection and fallback contract
(``engine=`` validation, ``REPRO_NO_KERNEL``, scalar-config points inside
a batch).  The randomized end-to-end sweep lives in
``test_simulator_fuzz.py``.
"""

from __future__ import annotations

import pytest

from repro.circuits.gates import cnot
from repro.mapping import (
    Placement,
    linear_factory_placement,
    random_circuit_placement,
)
from repro.routing import (
    Mesh,
    SimulatorConfig,
    kernel_available,
    numpy_available,
    simulate,
    simulate_batch,
    simulate_reference,
)
from repro.routing import batchsim
from repro.routing import kernel as kernel_module
from repro.routing.simulator import _gate_list


def available_engines():
    """Engines runnable in this environment (``scalar`` always is)."""
    engines = ["scalar"]
    if numpy_available():
        engines.append("vector")
    if kernel_available():
        engines.append("compiled")
    return engines


def dicts(results):
    return [result.to_dict() for result in results]


@pytest.fixture(scope="module")
def k4_points(single_level_k4):
    """A mixed point set over the K=4 factory: 2 placements x 3 configs."""
    gates = _gate_list(single_level_k4.circuit)
    placements = [
        linear_factory_placement(single_level_k4),
        random_circuit_placement(single_level_k4.circuit, seed=3),
    ]
    configs = [SimulatorConfig(max_candidates=mc) for mc in (1, 2, 8)]
    return [(gates, p, c) for p in placements for c in configs]


@pytest.fixture(scope="module")
def k4_expected(k4_points):
    return [simulate(g, p, c).to_dict() for g, p, c in k4_points]


class TestBatchInvariants:
    @pytest.mark.parametrize("engine", available_engines())
    def test_batch_of_one_matches_scalar(self, single_level_k4, engine):
        placement = random_circuit_placement(single_level_k4.circuit, seed=7)
        config = SimulatorConfig(max_candidates=2)
        point = (single_level_k4.circuit, placement, config)
        batched = simulate_batch([point], engine=engine)
        assert len(batched) == 1
        expected = simulate(single_level_k4.circuit, placement, config)
        assert batched[0].to_dict() == expected.to_dict()

    @pytest.mark.parametrize("engine", available_engines())
    def test_full_batch_matches_scalar(self, k4_points, k4_expected, engine):
        assert dicts(simulate_batch(k4_points, engine=engine)) == k4_expected

    @pytest.mark.parametrize("engine", available_engines())
    @pytest.mark.parametrize("size", [1, 3, 8])
    def test_split_independence(self, k4_points, k4_expected, engine, size):
        """Chunking a batch into sub-batches of any size changes nothing."""
        out = []
        for start in range(0, len(k4_points), size):
            out.extend(
                simulate_batch(k4_points[start:start + size], engine=engine)
            )
        assert dicts(out) == k4_expected

    @pytest.mark.parametrize("engine", available_engines())
    def test_order_independence(self, k4_points, k4_expected, engine):
        """Permuting the request order permutes the results, nothing else."""
        order = [4, 0, 5, 2, 1, 3]
        permuted = simulate_batch(
            [k4_points[i] for i in order], engine=engine
        )
        assert dicts(permuted) == [k4_expected[i] for i in order]

    @pytest.mark.parametrize("engine", available_engines())
    def test_mixed_circuit_grouping(
        self, single_level_k4, single_level_k8, engine
    ):
        """Interleaved circuits group internally; results stay per-request."""
        points = []
        for seed in range(2):
            for factory in (single_level_k4, single_level_k8):
                placement = random_circuit_placement(
                    factory.circuit, seed=seed
                )
                points.append(
                    (factory.circuit, placement, SimulatorConfig(max_candidates=2))
                )
        expected = [simulate(g, p, c).to_dict() for g, p, c in points]
        assert dicts(simulate_batch(points, engine=engine)) == expected

    @pytest.mark.parametrize("engine", available_engines())
    def test_early_retirees_do_not_perturb_survivors(
        self, single_level_k8, engine
    ):
        """A quickly finishing point leaves long-running lane-mates exact.

        The linear placement of the K=8 factory finishes far earlier than
        the congested random placements batched with it; the survivors'
        results must equal their solo runs byte for byte.
        """
        gates = _gate_list(single_level_k8.circuit)
        fast = linear_factory_placement(single_level_k8)
        slow = [
            random_circuit_placement(single_level_k8.circuit, seed=s)
            for s in (0, 3)
        ]
        config = SimulatorConfig(max_candidates=1)
        points = [(gates, p, config) for p in [slow[0], fast, slow[1]]]
        solo = [simulate(g, p, c) for g, p, c in points]
        assert solo[1].latency < min(solo[0].latency, solo[2].latency)
        assert dicts(simulate_batch(points, engine=engine)) == dicts(solo)

    @pytest.mark.parametrize("engine", available_engines())
    def test_matches_untracked_reference(self, k4_points, engine):
        """Satellite: ``simulate_reference(track_wakeups=False)`` agreement.

        The untracked oracle reports ``wakeups=0`` by construction (the
        ``sim-congestion`` bench depends on this); everything else in its
        ``to_dict()`` must match the batched engines field for field.
        """
        batched = simulate_batch(k4_points, engine=engine)
        for (g, p, c), result in zip(k4_points, batched):
            untracked = simulate_reference(g, p, c, track_wakeups=False)
            batched_dict = result.to_dict()
            untracked_dict = untracked.to_dict()
            assert untracked_dict.pop("wakeups") == 0
            batched_dict.pop("wakeups")
            assert batched_dict == untracked_dict

    @pytest.mark.parametrize("engine", available_engines())
    def test_scalar_config_points_inside_batch(self, single_level_k4, engine):
        """Detour/hop configs fall back per point without breaking the batch."""
        placement = random_circuit_placement(single_level_k4.circuit, seed=1)
        configs = [
            SimulatorConfig(max_candidates=2),
            SimulatorConfig(allow_detour=True, detour_slack=3.0),
            SimulatorConfig(hops={0: (1, 1)}, max_candidates=2),
        ]
        points = [(single_level_k4.circuit, placement, c) for c in configs]
        expected = [simulate(g, p, c).to_dict() for g, p, c in points]
        assert dicts(simulate_batch(points, engine=engine)) == expected

    @pytest.mark.parametrize("engine", available_engines())
    def test_stale_freed_bits_regression(self, engine):
        """Fuzz-found: an unparked retirement must not leak freed cells.

        Minimized from fuzz seed 11: gate 3 retires at a moment when
        nothing is parked, so the vector engine once skipped consuming its
        freed-cell scratch rows; the next retirement then cleared cells of
        the braid issued in between, letting gate 5 issue one cycle early
        instead of stalling.
        """
        from repro.circuits.gates import h, inject_t

        gates = (
            cnot(5, 4), h(1), cnot(1, 2), cnot(4, 6), cnot(2, 1),
            inject_t(5, 6),
        )
        placement = Placement(
            width=3,
            height=4,
            positions={
                0: (0, 1), 1: (3, 0), 2: (3, 1), 3: (0, 2),
                4: (2, 0), 5: (3, 2), 6: (0, 0),
            },
        )
        config = SimulatorConfig(max_candidates=4)
        expected = simulate(gates, placement, config)
        assert expected.stall_events == 1  # the scenario must actually stall
        points = [(gates, placement, config)] * 2
        batched = simulate_batch(points, engine=engine)
        assert [r.to_dict() for r in batched] == [expected.to_dict()] * 2

    @pytest.mark.parametrize("engine", available_engines())
    def test_max_cycles_exceeded_parity(self, engine):
        """The scalar engine's max_cycles error fires identically batched."""
        gates = (cnot(0, 1), cnot(2, 3), cnot(0, 3))
        placement = Placement(
            width=4,
            height=1,
            positions={q: (0, q) for q in range(4)},
        )
        points = [(gates, placement, SimulatorConfig(max_cycles=0))]
        with pytest.raises(RuntimeError, match="max_cycles=0"):
            simulate_batch(points, engine=engine)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, single_level_k4):
        placement = linear_factory_placement(single_level_k4)
        with pytest.raises(ValueError, match="unknown batch engine"):
            simulate_batch(
                [(single_level_k4.circuit, placement, None)], engine="magic"
            )

    def test_empty_batch(self):
        assert simulate_batch([]) == []

    def test_none_config_defaults(self, single_level_k4):
        placement = linear_factory_placement(single_level_k4)
        batched = simulate_batch([(single_level_k4.circuit, placement, None)])
        expected = simulate(single_level_k4.circuit, placement)
        assert batched[0].to_dict() == expected.to_dict()

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_no_kernel_env_pins_python_paths(
        self, single_level_k4, monkeypatch
    ):
        """REPRO_NO_KERNEL=1 disables the compiled engine, not correctness."""
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        kernel_module.reset()
        try:
            assert not kernel_available()
            placement = random_circuit_placement(
                single_level_k4.circuit, seed=5
            )
            points = [
                (single_level_k4.circuit, placement, SimulatorConfig(max_candidates=2)),
                (single_level_k4.circuit, placement, SimulatorConfig(max_candidates=8)),
            ]
            with pytest.raises(RuntimeError, match="compiled"):
                simulate_batch(points, engine="compiled")
            expected = [simulate(g, p, c).to_dict() for g, p, c in points]
            assert dicts(simulate_batch(points)) == expected
        finally:
            monkeypatch.delenv("REPRO_NO_KERNEL")
            kernel_module.reset()


@pytest.mark.skipif(not kernel_available(), reason="needs the C kernel")
class TestCompiledPlanBuilder:
    """The C ``build_pair_plan(s)`` vs the pure-Python plan composer."""

    def _mesh(self, factory, seed):
        placement = random_circuit_placement(factory.circuit, seed=seed)
        return placement, Mesh.from_placement(
            placement.positions,
            width=placement.width,
            height=placement.height,
        )

    def _pairs(self, mesh):
        cells = sorted(set(mesh.qubit_cells.values()))
        return [
            (a, b)
            for a in cells
            for b in cells
            if a != b and min(a[0], a[1], b[0], b[1]) >= 1
        ]

    @staticmethod
    def _as_bytes(packed):
        return packed if isinstance(packed, bytes) else packed.tobytes()

    def _assert_plans_equal(self, lhs, rhs):
        assert lhs.count == rhs.count
        assert self._as_bytes(lhs.packed) == self._as_bytes(rhs.packed)
        assert (lhs.probe_arr == rhs.probe_arr).all()
        assert lhs.masks == rhs.masks

    @pytest.mark.parametrize("seed", [0, 1])
    def test_single_pair_builder_parity(self, single_level_k8, seed):
        _placement, mesh = self._mesh(single_level_k8, seed)
        height, width = mesh.lattice_height, mesh.lattice_width
        compiled = batchsim._PlanCache(
            height, width, kernel=kernel_module.load()
        )
        python = batchsim._PlanCache(height, width, kernel=None)
        for source, target in self._pairs(mesh):
            self._assert_plans_equal(
                compiled.pair(mesh, source, target),
                python.pair(mesh, source, target),
            )

    def test_bulk_prefetch_matches_single_calls(self, single_level_k8):
        """``prefetch`` (one bulk kernel call) == per-pair ``pair`` calls."""
        _placement, mesh = self._mesh(single_level_k8, 2)
        height, width = mesh.lattice_height, mesh.lattice_width
        kern = kernel_module.load()
        prefetched = batchsim._PlanCache(height, width, kernel=kern)
        single = batchsim._PlanCache(height, width, kernel=kern)
        pairs = self._pairs(mesh)
        prefetched.prefetch(mesh, pairs)
        for source, target in pairs:
            self._assert_plans_equal(
                prefetched.pair(mesh, source, target),
                single.pair(mesh, source, target),
            )

    def test_prefetch_skips_border_and_degenerate_pairs(self, single_level_k4):
        """Padding-frame and coincident pairs never reach the bulk kernel.

        Qubit tiles live at odd/odd lattice cells, so neither shape occurs
        in real plan requests; ``prefetch`` must not hand them to the C
        builder (whose channel enumeration assumes coordinates >= 1).
        """
        _placement, mesh = self._mesh(single_level_k4, 0)
        height, width = mesh.lattice_height, mesh.lattice_width
        cache = batchsim._PlanCache(height, width, kernel=kernel_module.load())
        cache.prefetch(mesh, [((0, 1), (1, 1)), ((1, 1), (1, 1))])
        assert not cache._plans
