"""Unit tests for multi-level factory construction (repro.distillation.block_code)."""

import pytest

from repro.distillation import (
    FactorySpec,
    build_factory,
    build_two_level_factory,
    default_port_map,
    validate_port_map,
)


class TestFactorySpec:
    def test_capacity_is_k_to_the_levels(self):
        assert FactorySpec(k=4, levels=2).capacity == 16
        assert FactorySpec(k=10, levels=2).capacity == 100
        assert FactorySpec(k=8, levels=1).capacity == 8

    def test_raw_input_count(self):
        assert FactorySpec(k=2, levels=2).num_raw_inputs == 14**2

    def test_modules_per_round_two_level(self):
        spec = FactorySpec(k=4, levels=2)
        assert spec.modules_in_round(1) == 20
        assert spec.modules_in_round(2) == 4

    def test_modules_per_round_three_level(self):
        spec = FactorySpec(k=2, levels=3)
        assert spec.modules_in_round(1) == 14**2
        assert spec.modules_in_round(2) == 2 * 14
        assert spec.modules_in_round(3) == 4

    def test_round_index_bounds(self):
        spec = FactorySpec(k=2, levels=2)
        with pytest.raises(ValueError):
            spec.modules_in_round(0)
        with pytest.raises(ValueError):
            spec.modules_in_round(3)

    def test_from_capacity(self):
        assert FactorySpec.from_capacity(36, 2).k == 6
        assert FactorySpec.from_capacity(8, 1).k == 8

    def test_from_capacity_rejects_non_powers(self):
        with pytest.raises(ValueError):
            FactorySpec.from_capacity(10, 2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FactorySpec(k=0, levels=1)
        with pytest.raises(ValueError):
            FactorySpec(k=2, levels=0)


class TestPortMaps:
    def test_default_port_map_covers_all_pairs(self):
        spec = FactorySpec(k=2, levels=2)
        port_map = default_port_map(spec, 1)
        assert len(port_map) == 14 * 2  # every (producer, consumer) pair

    def test_default_port_map_valid(self):
        spec = FactorySpec(k=3, levels=2)
        validate_port_map(spec, 1, default_port_map(spec, 1))

    def test_last_boundary_has_no_map(self):
        spec = FactorySpec(k=3, levels=2)
        assert default_port_map(spec, 2) == {}

    def test_validate_rejects_duplicate_ports(self):
        spec = FactorySpec(k=2, levels=2)
        port_map = default_port_map(spec, 1)
        # Make producer 0 send port 0 to both consumers.
        port_map[(0, 0)] = 0
        port_map[(0, 1)] = 0
        with pytest.raises(ValueError):
            validate_port_map(spec, 1, port_map)

    def test_validate_rejects_missing_pairs(self):
        spec = FactorySpec(k=2, levels=2)
        port_map = default_port_map(spec, 1)
        port_map.pop((0, 0))
        with pytest.raises(ValueError):
            validate_port_map(spec, 1, port_map)

    def test_validate_rejects_out_of_range_port(self):
        spec = FactorySpec(k=2, levels=2)
        port_map = default_port_map(spec, 1)
        port_map[(0, 0)] = 5
        with pytest.raises(ValueError):
            validate_port_map(spec, 1, port_map)


class TestSingleLevelFactory:
    def test_single_level_is_one_module(self, single_level_k8):
        assert len(single_level_k8.rounds) == 1
        assert len(single_level_k8.rounds[0]) == 1

    def test_single_level_qubit_count(self, single_level_k8):
        assert single_level_k8.num_qubits == 5 * 8 + 13

    def test_single_level_has_no_permutation_edges(self, single_level_k8):
        assert single_level_k8.permutation_edges == []

    def test_output_qubits_are_module_outputs(self, single_level_k8):
        module = single_level_k8.rounds[0][0]
        assert single_level_k8.output_qubits == module.out_qubits


class TestTwoLevelFactory:
    def test_round_structure(self, two_level_cap4):
        spec = two_level_cap4.spec
        assert spec.k == 2
        assert len(two_level_cap4.rounds) == 2
        assert len(two_level_cap4.rounds[0]) == 14
        assert len(two_level_cap4.rounds[1]) == 2

    def test_capacity_outputs(self, two_level_cap4):
        assert len(two_level_cap4.output_qubits) == 4

    def test_permutation_edge_count(self, two_level_cap4):
        # Every round-1 output feeds exactly one round-2 input slot.
        assert len(two_level_cap4.permutation_edges) == 14 * 2

    def test_round2_inputs_are_round1_outputs(self, two_level_cap4):
        round1_outputs = {
            q for module in two_level_cap4.rounds[0] for q in module.out_qubits
        }
        for module in two_level_cap4.rounds[1]:
            assert set(module.raw_qubits) <= round1_outputs

    def test_correlated_error_constraint(self, two_level_cap4):
        # Each round-2 module takes at most one state from any round-1 module.
        producer_of = {}
        for module in two_level_cap4.rounds[0]:
            for qubit in module.out_qubits:
                producer_of[qubit] = module.module_index
        for module in two_level_cap4.rounds[1]:
            producers = [producer_of[q] for q in module.raw_qubits]
            assert len(producers) == len(set(producers))

    def test_barriers_between_rounds(self, two_level_cap4):
        barriers = [g for g in two_level_cap4.circuit if g.is_barrier]
        assert len(barriers) == 1

    def test_no_barriers_when_disabled(self):
        factory = build_two_level_factory(4, barriers_between_rounds=False)
        assert all(not g.is_barrier for g in factory.circuit)

    def test_round_gate_slices_cover_all_gates(self, two_level_cap4):
        total = sum(
            len(two_level_cap4.round_gates(r))
            for r in (1, 2)
        )
        non_barrier = sum(1 for g in two_level_cap4.circuit if not g.is_barrier)
        assert total == non_barrier

    def test_round_qubits_include_inputs(self, two_level_cap4):
        round2_qubits = set(two_level_cap4.round_qubits(2))
        for module in two_level_cap4.rounds[1]:
            assert set(module.raw_qubits) <= round2_qubits

    def test_module_of_qubit_covers_all_local_qubits(self, two_level_cap4):
        owner = two_level_cap4.module_of_qubit()
        for module in two_level_cap4.modules():
            for qubit in module.local_qubits:
                assert owner[qubit] == (module.round_index, module.module_index)

    def test_gate_count_scales_with_modules(self, two_level_cap4):
        from repro.distillation import module_gate_count

        expected = 16 * module_gate_count(2) + 1  # 16 modules + 1 barrier
        assert len(two_level_cap4.circuit) == expected


class TestReusePolicy:
    def test_reuse_allocates_fewer_qubits(self, two_level_cap4, two_level_cap4_reuse):
        assert two_level_cap4_reuse.num_qubits < two_level_cap4.num_qubits

    def test_reuse_recycles_measured_qubits(self, two_level_cap4_reuse):
        round1_local = {
            q
            for module in two_level_cap4_reuse.rounds[0]
            for q in module.all_qubits
        }
        round2_local = {
            q
            for module in two_level_cap4_reuse.rounds[1]
            for q in module.local_qubits
        }
        assert round2_local <= round1_local

    def test_no_reuse_keeps_rounds_disjoint(self, two_level_cap4):
        round1_local = {
            q for module in two_level_cap4.rounds[0] for q in module.all_qubits
        }
        round2_local = {
            q for module in two_level_cap4.rounds[1] for q in module.local_qubits
        }
        assert not (round1_local & round2_local)

    def test_reuse_never_recycles_forwarded_outputs(self, two_level_cap4_reuse):
        forwarded = {
            edge.producer_qubit for edge in two_level_cap4_reuse.permutation_edges
        }
        round2_local = {
            q
            for module in two_level_cap4_reuse.rounds[1]
            for q in module.local_qubits
        }
        assert not (forwarded & round2_local)


class TestCustomPortMaps:
    def test_custom_port_map_changes_wiring(self):
        spec = FactorySpec(k=2, levels=2)
        base = build_factory(spec)
        # Swap the ports every producer sends to the two consumers.
        swapped = {
            (producer, consumer): 1 - port
            for (producer, consumer), port in default_port_map(spec, 1).items()
        }
        custom = build_factory(spec, port_maps=[swapped])
        base_inputs = [m.raw_qubits for m in base.rounds[1]]
        custom_inputs = [m.raw_qubits for m in custom.rounds[1]]
        assert base_inputs != custom_inputs
        # The multiset of consumed qubits is identical — only the routing changed.
        assert sorted(q for mod in base_inputs for q in mod) == sorted(
            q for mod in custom_inputs for q in mod
        )

    def test_port_map_count_must_match_boundaries(self):
        spec = FactorySpec(k=2, levels=2)
        with pytest.raises(ValueError):
            build_factory(spec, port_maps=[])

    def test_wrong_port_map_rejected(self):
        spec = FactorySpec(k=2, levels=2)
        with pytest.raises(ValueError):
            build_factory(spec, port_maps=[{(0, 0): 0}])
