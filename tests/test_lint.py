"""Tests for the project-invariant checker (``repro-msfu lint``).

Each rule gets a planted-violation twin pair: a *bad* module the rule must
flag and a *good* module it must leave alone.  On top of that: suppression
markers, the baseline round-trip, exit codes, and a meta-test asserting the
real ``src/repro`` tree is clean under the committed baseline — which is
what keeps the CI gate green.
"""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import (
    ALL_RULES,
    Finding,
    load_baseline,
    rules_by_id,
    run_rules,
    write_baseline,
)
from repro.lint.baseline import apply_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import ModuleSource, check_module, iter_sources

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src" / "repro"
COMMITTED_BASELINE = REPO_ROOT / "lint-baseline.json"


def write_tree(root: Path, files: dict) -> Path:
    """Materialize ``{relative/path.py: source}`` under ``root``."""
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def findings_for(root: Path, rule_ids=None):
    rules = rules_by_id(rule_ids) if rule_ids else ALL_RULES
    return run_rules(str(root), rules)


class TestDeterminismRule:
    def test_flags_wall_clock_and_global_random_in_scope(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/bad.py": (
                    "import random\n"
                    "import time\n"
                    "import datetime\n"
                    "def jitter():\n"
                    "    a = time.time()\n"
                    "    b = random.random()\n"
                    "    c = datetime.datetime.now()\n"
                    "    return a, b, c\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["determinism"])
        assert [f.line for f in found] == [5, 6, 7]
        assert all(f.rule == "determinism" for f in found)

    def test_good_twin_and_out_of_scope_are_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                # Seeded RNG and perf_counter are the sanctioned patterns.
                "routing/good.py": (
                    "import random\n"
                    "import time\n"
                    "def run(seed):\n"
                    "    rng = random.Random(seed)\n"
                    "    started = time.perf_counter()\n"
                    "    return rng.random(), started\n"
                ),
                # Provenance timestamps outside the deterministic subtree
                # are allowed by design.
                "api/provenance.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
            },
        )
        assert findings_for(tmp_path, ["determinism"]) == []


class TestAtomicPersistenceRule:
    def test_flags_raw_json_writes(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "api/bad_store.py": (
                    "import json\n"
                    "def save(path, payload):\n"
                    "    with open(path, 'w') as handle:\n"
                    "        json.dump(payload, handle)\n"
                    "def save_text(path, payload):\n"
                    "    path.write_text(json.dumps(payload))\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["atomic-persistence"])
        assert [f.line for f in found] == [4, 6]

    def test_good_twin_and_primitive_module_are_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "api/good_store.py": (
                    "from ..persistutil import atomic_write_json\n"
                    "def save(path, payload):\n"
                    "    atomic_write_json(path, payload, indent=2)\n"
                ),
                # persistutil.py owns the raw primitives and is exempt.
                "persistutil.py": (
                    "import json\n"
                    "def _write(handle, payload):\n"
                    "    json.dump(payload, handle)\n"
                ),
            },
        )
        assert findings_for(tmp_path, ["atomic-persistence"]) == []


class TestFingerprintSaltingRule:
    def test_flags_bare_blake2b(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/bad_hash.py": (
                    "import hashlib\n"
                    "from hashlib import blake2b\n"
                    "def digest(payload):\n"
                    "    return (hashlib.blake2b(payload).hexdigest(),\n"
                    "            blake2b(payload).hexdigest())\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["fingerprint-salting"])
        assert [f.line for f in found] == [4, 5]

    def test_tagged_fingerprint_and_primitive_module_are_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/good_hash.py": (
                    "from ..persistutil import tagged_fingerprint\n"
                    "def digest(payload):\n"
                    "    return tagged_fingerprint('tag/v1', payload)\n"
                ),
                "persistutil.py": (
                    "import hashlib\n"
                    "def tagged_fingerprint(tag, payload):\n"
                    "    return hashlib.blake2b(payload).hexdigest()\n"
                ),
            },
        )
        assert findings_for(tmp_path, ["fingerprint-salting"]) == []


class TestLockDisciplineRule:
    BAD_CLASS = (
        "import threading\n"
        "class Worker:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._jobs = {}\n"
        "    def submit(self, key, value):\n"
        "        with self._lock:\n"
        "            self._jobs[key] = value\n"
        "    def reset(self):\n"
        "        self._jobs = {}\n"
    )

    def test_flags_unguarded_write_to_lock_owned_attribute(self, tmp_path):
        write_tree(tmp_path, {"service/worker.py": self.BAD_CLASS})
        found = findings_for(tmp_path, ["lock-discipline"])
        assert len(found) == 1
        assert found[0].line == 10
        assert "_jobs" in found[0].message and "reset()" in found[0].message

    def test_good_twin_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/worker.py": (
                    "import threading\n"
                    "class Worker:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._jobs = {}\n"  # constructors are exempt
                    "    def submit(self, key, value):\n"
                    "        with self._lock:\n"
                    "            self._jobs[key] = value\n"
                    "    def reset(self):\n"
                    "        with self._lock:\n"
                    "            self._jobs = {}\n"
                ),
            },
        )
        assert findings_for(tmp_path, ["lock-discipline"]) == []

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        write_tree(tmp_path, {"api/worker.py": self.BAD_CLASS})
        assert findings_for(tmp_path, ["lock-discipline"]) == []

    def test_module_global_variant(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/kernel.py": (
                    "import threading\n"
                    "_lock = threading.Lock()\n"
                    "_cached = None\n"
                    "def load():\n"
                    "    global _cached\n"
                    "    with _lock:\n"
                    "        _cached = object()\n"
                    "def evict():\n"
                    "    global _cached\n"
                    "    _cached = None\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["lock-discipline"])
        assert len(found) == 1
        assert found[0].line == 10
        assert "_cached" in found[0].message


class TestSerializationParityRule:
    def test_flags_one_sided_dataclasses(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "api/records.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class OnlyTo:\n"
                    "    value: int\n"
                    "    def to_dict(self):\n"
                    "        return {'value': self.value}\n"
                    "@dataclass(frozen=True)\n"
                    "class OnlyFrom:\n"
                    "    value: int\n"
                    "    @classmethod\n"
                    "    def from_dict(cls, data):\n"
                    "        return cls(data['value'])\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["serialization-parity"])
        assert [f.line for f in found] == [3, 8]
        assert "OnlyTo" in found[0].message and "from_dict" in found[0].message
        assert "OnlyFrom" in found[1].message and "to_dict" in found[1].message

    def test_balanced_and_non_dataclass_are_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "api/records.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class Both:\n"
                    "    value: int\n"
                    "    def to_dict(self):\n"
                    "        return {'value': self.value}\n"
                    "    @classmethod\n"
                    "    def from_dict(cls, data):\n"
                    "        return cls(data['value'])\n"
                    "class PlainView:\n"  # not a dataclass: out of scope
                    "    def to_dict(self):\n"
                    "        return {}\n"
                ),
            },
        )
        assert findings_for(tmp_path, ["serialization-parity"]) == []


class TestSuppressions:
    def test_inline_disable_silences_one_line(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/hash.py": (
                    "import hashlib\n"
                    "def a(p):\n"
                    "    return hashlib.blake2b(p)"
                    "  # repro-lint: disable=fingerprint-salting\n"
                    "def b(p):\n"
                    "    return hashlib.blake2b(p)\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["fingerprint-salting"])
        assert [f.line for f in found] == [5]

    def test_file_wide_disable_silences_the_module(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/hash.py": (
                    "# repro-lint: disable-file=fingerprint-salting\n"
                    "import hashlib\n"
                    "def a(p):\n"
                    "    return hashlib.blake2b(p)\n"
                ),
            },
        )
        assert findings_for(tmp_path, ["fingerprint-salting"]) == []

    def test_disable_list_covers_multiple_rules(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/mixed.py": (
                    "import hashlib, time\n"
                    "def a(p):\n"
                    "    return hashlib.blake2b(str(time.time()).encode())"
                    "  # repro-lint: disable=fingerprint-salting, determinism\n"
                ),
            },
        )
        assert findings_for(tmp_path) == []

    def test_disable_of_other_rule_does_not_suppress(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/hash.py": (
                    "import hashlib\n"
                    "def a(p):\n"
                    "    return hashlib.blake2b(p)"
                    "  # repro-lint: disable=determinism\n"
                ),
            },
        )
        found = findings_for(tmp_path, ["fingerprint-salting"])
        assert len(found) == 1


class TestEngine:
    def test_iter_sources_sorted_skips_caches_and_syntax_errors(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "b.py": "x = 1\n",
                "a/nested.py": "y = 2\n",
                "__pycache__/junk.py": "z = 3\n",
                ".hidden/secret.py": "w = 4\n",
                "broken.py": "def broken(:\n",
            },
        )
        paths = [module.path for module in iter_sources(str(tmp_path))]
        assert paths == ["b.py", "a/nested.py"] or paths == ["a/nested.py", "b.py"]
        # Deterministic: a second walk yields the identical order.
        assert paths == [module.path for module in iter_sources(str(tmp_path))]

    def test_check_module_runs_all_rules_once_per_parse(self):
        module = ModuleSource(
            path="routing/bad.py",
            source="import hashlib\nh = hashlib.blake2b(b'x')\n",
            tree=__import__("ast").parse(
                "import hashlib\nh = hashlib.blake2b(b'x')\n"
            ),
        )
        found = check_module(module, ALL_RULES)
        assert [f.rule for f in found] == ["fingerprint-salting"]

    def test_rules_by_id_rejects_unknown(self):
        import pytest

        with pytest.raises(ValueError):
            rules_by_id(["no-such-rule"])

    def test_findings_sort_by_location(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "routing/z.py": "import time\nt = time.time()\n",
                "routing/a.py": "import time\nt = time.time()\n",
            },
        )
        found = findings_for(tmp_path, ["determinism"])
        assert [f.file for f in found] == ["routing/a.py", "routing/z.py"]


class TestFindingRecord:
    def test_round_trips_through_dict(self):
        finding = Finding(file="a.py", line=3, rule="determinism", message="m")
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_baseline_key_excludes_line(self):
        one = Finding(file="a.py", line=3, rule="determinism", message="m")
        two = Finding(file="a.py", line=9, rule="determinism", message="m")
        assert one.baseline_key == two.baseline_key


class TestBaseline:
    def test_round_trip_grandfathers_existing_findings(self, tmp_path):
        findings = [
            Finding(file="a.py", line=1, rule="determinism", message="m"),
            Finding(file="a.py", line=5, rule="determinism", message="m"),
        ]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        baseline = load_baseline(str(baseline_path))
        assert baseline == {"a.py::determinism::m": 2}
        fresh, grandfathered = apply_baseline(findings, baseline)
        assert fresh == [] and grandfathered == 2

    def test_extra_occurrence_beyond_count_gates(self, tmp_path):
        old = [Finding(file="a.py", line=1, rule="determinism", message="m")]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), old)
        grown = old + [Finding(file="a.py", line=9, rule="determinism", message="m")]
        fresh, grandfathered = apply_baseline(
            sorted(grown), load_baseline(str(baseline_path))
        )
        assert grandfathered == 1
        assert [f.line for f in fresh] == [9]

    def test_missing_file_is_empty_and_bad_version_raises(self, tmp_path):
        import pytest

        assert load_baseline(str(tmp_path / "absent.json")) == {}
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))


class TestLintCli:
    def _bad_tree(self, tmp_path):
        return write_tree(
            tmp_path / "pkg",
            {"routing/bad.py": "import time\nt = time.time()\n"},
        )

    def test_exit_one_on_planted_violation(self, tmp_path, capsys):
        root = self._bad_tree(tmp_path)
        code = lint_main(["--root", str(root), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "routing/bad.py:2: determinism:" in out

    def test_json_format(self, tmp_path, capsys):
        root = self._bad_tree(tmp_path)
        code = lint_main(
            ["--root", str(root), "--no-baseline", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["grandfathered"] == 0
        assert [f["rule"] for f in payload["new"]] == ["determinism"]
        assert set(payload["rules"]) == {rule.id for rule in ALL_RULES}

    def test_rule_filter_and_unknown_rule(self, tmp_path, capsys):
        root = self._bad_tree(tmp_path)
        assert (
            lint_main(
                [
                    "--root",
                    str(root),
                    "--no-baseline",
                    "--rule",
                    "atomic-persistence",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert lint_main(["--root", str(root), "--rule", "bogus"]) == 2

    def test_update_baseline_then_clean_run(self, tmp_path, capsys):
        root = self._bad_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                ["--root", str(root), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert (
            lint_main(["--root", str(root), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "1 grandfathered by baseline" in out
        # A second violation beyond the grandfathered count gates again.
        (root / "routing" / "bad.py").write_text(
            "import time\nt = time.time()\nu = time.time()\n"
        )
        assert (
            lint_main(["--root", str(root), "--baseline", str(baseline)]) == 1
        )

    def test_exit_two_on_bad_root_or_baseline(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path / "nope")]) == 2
        root = self._bad_tree(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert lint_main(["--root", str(root), "--baseline", str(bad)]) == 2

    def test_wired_into_repro_msfu_cli(self, tmp_path, capsys):
        root = self._bad_tree(tmp_path)
        code = cli_main(["lint", "--root", str(root), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "determinism" in out
        capsys.readouterr()
        assert cli_main(["lint", "--list-rules"]) == 0
        listed = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in listed


class TestRealTreeIsClean:
    """The meta-tests backing the CI gate: src/repro lints clean."""

    def test_lint_exits_zero_with_committed_baseline(self, capsys):
        code = lint_main(
            [
                "--root",
                str(SRC_ROOT),
                "--baseline",
                str(COMMITTED_BASELINE),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out

    def test_committed_baseline_is_empty(self):
        # The tree is clean outright — the baseline grandfather list holds
        # nothing.  If a rule regresses, either fix the site or add it here
        # via --update-baseline and justify the diff in review.
        assert load_baseline(str(COMMITTED_BASELINE)) == {}

    def test_service_and_kernel_lock_discipline_is_clean(self):
        # Satellite regression pin: the threaded sweep service and the
        # kernel loader currently satisfy lock-discipline with zero
        # suppressions; new unguarded writes to lock-owned state must fail.
        found = run_rules(str(SRC_ROOT), rules_by_id(["lock-discipline"]))
        assert found == [], [f.to_dict() for f in found]
