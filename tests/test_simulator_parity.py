"""Randomized parity suite: the bitmask/wakeup engine vs the set-based oracle.

The default :func:`repro.routing.simulate` engine (integer-bitmask occupancy,
event-driven stall wakeup) must produce **byte-identical**
``SimulationResult.to_dict()`` output to :func:`repro.routing.simulate_reference`
(frozenset occupancy, every stalled gate re-tried at every completion event)
on every input — timing, per-gate schedules and all three stall counters
included.  These tests sweep randomized circuits, placements, candidate
budgets, detour policies and Valiant-hop assignments; the oracle's own
internal assertions (the wakeup parking invariant, masked-vs-set routing
agreement) run as part of every comparison.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.gates import barrier, cnot, cxx, h, inject_t, meas_x
from repro.mapping import (
    Placement,
    linear_factory_placement,
    random_circuit_placement,
)
from repro.routing import (
    SimulationResult,
    SimulatorConfig,
    bfs_detour,
    bfs_detour_mask,
    Mesh,
    simulate,
    simulate_reference,
)


def random_placement(rng: random.Random, num_qubits: int) -> Placement:
    height, width = rng.randint(2, 5), rng.randint(2, 5)
    while height * width < num_qubits:
        width += 1
    cells = [(r, c) for r in range(height) for c in range(width)]
    rng.shuffle(cells)
    return Placement(
        width=width,
        height=height,
        positions={q: cells[q] for q in range(num_qubits)},
    )


def random_gates(rng: random.Random, num_qubits: int):
    gates = []
    for _ in range(rng.randint(10, 50)):
        kind = rng.random()
        if kind < 0.45:
            a, b = rng.sample(range(num_qubits), 2)
            gates.append(cnot(a, b))
        elif kind < 0.6:
            a, b = rng.sample(range(num_qubits), 2)
            gates.append(inject_t(a, b))
        elif kind < 0.75:
            qubits = rng.sample(range(num_qubits), rng.randint(3, min(5, num_qubits)))
            gates.append(cxx(qubits[0], qubits[1:]))
        elif kind < 0.85:
            gates.append(barrier())
        elif kind < 0.95:
            gates.append(h(rng.randrange(num_qubits)))
        else:
            gates.append(meas_x(rng.randrange(num_qubits)))
    return gates


def random_config(
    rng: random.Random, gates, placement: Placement
) -> SimulatorConfig:
    hops = {
        index: (rng.randrange(placement.height), rng.randrange(placement.width))
        for index, gate in enumerate(gates)
        if gate.kind.value in ("cnot", "inject_t") and rng.random() < 0.2
    }
    return SimulatorConfig(
        max_candidates=rng.choice([1, 2, 4, 8]),
        allow_detour=rng.random() < 0.4,
        detour_slack=rng.choice([1.5, 2.0, 4.0]),
        hops=hops if rng.random() < 0.5 else {},
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_circuit_byte_identical(self, seed):
        """Random circuits x placements x configs: identical to_dict output."""
        rng = random.Random(20260728 + seed)
        num_qubits = rng.randint(4, 12)
        placement = random_placement(rng, num_qubits)
        gates = random_gates(rng, num_qubits)
        config = random_config(rng, gates, placement)
        mask = simulate(gates, placement, config)
        reference = simulate_reference(gates, placement, config)
        assert mask.to_dict() == reference.to_dict()

    @pytest.mark.parametrize("max_candidates", [1, 2, 8])
    def test_factory_linear_placement(self, single_level_k4, max_candidates):
        placement = linear_factory_placement(single_level_k4)
        config = SimulatorConfig(max_candidates=max_candidates)
        mask = simulate(single_level_k4.circuit, placement, config)
        reference = simulate_reference(single_level_k4.circuit, placement, config)
        assert mask.to_dict() == reference.to_dict()

    @pytest.mark.parametrize("seed", [0, 3])
    def test_factory_congested_random_placement(self, single_level_k8, seed):
        """The stall-heavy geometry: a random placement of the Fig. 5 circuit."""
        placement = random_circuit_placement(single_level_k8.circuit, seed=seed)
        config = SimulatorConfig(max_candidates=2)
        mask = simulate(single_level_k8.circuit, placement, config)
        reference = simulate_reference(single_level_k8.circuit, placement, config)
        assert mask.stall_events > 0  # the scenario must actually stall
        assert mask.to_dict() == reference.to_dict()

    def test_factory_detour_parity(self, single_level_k4):
        placement = random_circuit_placement(single_level_k4.circuit, seed=1)
        config = SimulatorConfig(allow_detour=True, detour_slack=3.0)
        mask = simulate(single_level_k4.circuit, placement, config)
        reference = simulate_reference(single_level_k4.circuit, placement, config)
        assert mask.to_dict() == reference.to_dict()

    def test_two_level_factory_parity(self, two_level_cap4):
        placement = random_circuit_placement(two_level_cap4.circuit, seed=2)
        config = SimulatorConfig(max_candidates=4)
        mask = simulate(two_level_cap4.circuit, placement, config)
        reference = simulate_reference(two_level_cap4.circuit, placement, config)
        assert mask.to_dict() == reference.to_dict()

    def test_hop_routing_parity(self):
        """Valiant-hop braids take the masked hop/fallback path."""
        placement = Placement(
            width=6,
            height=6,
            positions={q: (q // 6, q % 6) for q in range(12)},
        )
        gates = [cnot(0, 11), cnot(1, 10), cnot(2, 9)]
        config = SimulatorConfig(hops={0: (4, 2), 1: (5, 5)}, max_candidates=1)
        mask = simulate(gates, placement, config)
        reference = simulate_reference(gates, placement, config)
        assert mask.to_dict() == reference.to_dict()


class TestBfsDetourMask:
    def make_mesh(self):
        positions = {0: (0, 0), 1: (0, 4), 2: (1, 2)}
        return Mesh.from_placement(positions, width=6, height=2)

    @pytest.mark.parametrize("seed", range(10))
    def test_identical_paths_on_random_blocked_sets(self, seed):
        mesh = self.make_mesh()
        rng = random.Random(seed)
        source, target = mesh.qubit_cell(0), mesh.qubit_cell(1)
        all_cells = [
            (r, c)
            for r in range(mesh.lattice_height)
            for c in range(mesh.lattice_width)
            if (r, c) not in (source, target)
        ]
        blocked = frozenset(rng.sample(all_cells, rng.randint(0, 12)))
        set_path = bfs_detour(mesh, source, target, blocked)
        mask_path = bfs_detour_mask(mesh, source, target, mesh.cells_mask(blocked))
        assert set_path == mask_path

    def test_max_length_cap_matches(self):
        mesh = self.make_mesh()
        source, target = mesh.qubit_cell(0), mesh.qubit_cell(1)
        for max_length in (3, 6, 50):
            assert bfs_detour(
                mesh, source, target, frozenset(), max_length
            ) == bfs_detour_mask(mesh, source, target, 0, max_length)


class TestResultSerialization:
    def test_to_dict_round_trip(self, single_level_k4, k4_random_placement):
        result = simulate(single_level_k4.circuit, k4_random_placement)
        data = result.to_dict()
        assert data["volume"] == result.volume
        assert data["average_braid_length"] == result.average_braid_length
        assert SimulationResult.from_dict(data) == result

    def test_untracked_reference_reports_zero_wakeups(
        self, single_level_k8
    ):
        placement = random_circuit_placement(single_level_k8.circuit, seed=0)
        tracked = simulate_reference(single_level_k8.circuit, placement)
        untracked = simulate_reference(
            single_level_k8.circuit, placement, track_wakeups=False
        )
        assert tracked.wakeups > 0
        assert untracked.wakeups == 0
        tracked_dict = tracked.to_dict()
        untracked_dict = untracked.to_dict()
        tracked_dict.pop("wakeups")
        untracked_dict.pop("wakeups")
        assert tracked_dict == untracked_dict
