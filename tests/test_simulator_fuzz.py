"""Differential fuzz harness: batched engines vs the reference oracles.

Each trial draws a random scenario — one or two circuits, one or two
placements each, a handful of simulator configs, the whole point set
shuffled and chunked into random batch sizes — and checks that **every**
available batched engine (``scalar``, ``vector`` when numpy is present,
``compiled`` when the C kernel builds) produces ``to_dict()`` output
byte-identical to per-point :func:`repro.routing.simulate`, which is
itself cross-checked against :func:`repro.routing.simulate_reference`
(stall_events, distinct_stalls and wakeups included).  A small corpus
runs in tier 1; the nightly CI job widens it with ``--fuzz-iterations``.

Failures are collected, not raised one at a time: the assertion message
lists every failing seed with a one-line repro command
(``--fuzz-seeds=<seed>`` replays exactly that trial).
"""

from __future__ import annotations

import random

import pytest

from repro.mapping import Placement
from repro.routing import (
    SimulatorConfig,
    kernel_available,
    numpy_available,
    simulate,
    simulate_batch,
    simulate_reference,
)
from test_simulator_parity import random_gates, random_placement

#: Offset added to the trial index so seed 0 is not a magic value.
SEED_BASE = 20260808


def _engines():
    engines = ["scalar"]
    if numpy_available():
        engines.append("vector")
    if kernel_available():
        engines.append("compiled")
    return engines


def _random_batchable_config(rng: random.Random, gates, placement: Placement):
    """Mostly batchable configs; ~1 in 5 exercise the scalar fallback."""
    hops = {}
    allow_detour = False
    if rng.random() < 0.2:
        if rng.random() < 0.5:
            allow_detour = True
        else:
            hops = {
                index: (
                    rng.randrange(placement.height),
                    rng.randrange(placement.width),
                )
                for index, gate in enumerate(gates)
                if gate.kind.value in ("cnot", "inject_t")
                and rng.random() < 0.3
            }
    return SimulatorConfig(
        max_candidates=rng.choice([1, 2, 4, 8]),
        allow_detour=allow_detour,
        detour_slack=rng.choice([1.5, 2.0, 4.0]),
        hops=hops,
    )


def run_trial(seed: int) -> None:
    """One differential trial; raises AssertionError on any divergence."""
    rng = random.Random(SEED_BASE + seed)
    points = []
    for _ in range(rng.randint(1, 2)):  # circuits per trial
        num_qubits = rng.randint(4, 9)
        gates = tuple(random_gates(rng, num_qubits))
        for _ in range(rng.randint(1, 2)):  # placements per circuit
            placement = random_placement(rng, num_qubits)
            for _ in range(rng.randint(1, 3)):  # configs per placement
                config = _random_batchable_config(rng, gates, placement)
                points.append((gates, placement, config))
    rng.shuffle(points)

    expected = []
    for gates, placement, config in points:
        masked = simulate(gates, placement, config)
        reference = simulate_reference(gates, placement, config)
        assert masked.to_dict() == reference.to_dict(), (
            "masked engine diverged from the set-based reference"
        )
        expected.append(masked.to_dict())

    batch_size = rng.choice([1, 3, 8, len(points)])
    for engine in _engines():
        # Whole batch in one call...
        out = simulate_batch(points, engine=engine)
        assert [r.to_dict() for r in out] == expected, (
            f"engine={engine!r} diverged on the full batch"
        )
        # ...and chunked into sub-batches of the trial's random size.
        chunked = []
        for start in range(0, len(points), batch_size):
            chunked.extend(
                simulate_batch(points[start:start + batch_size], engine=engine)
            )
        assert [r.to_dict() for r in chunked] == expected, (
            f"engine={engine!r} diverged at batch_size={batch_size}"
        )


def test_differential_fuzz(request):
    """Sweep the seeded corpus; report every failing seed with a repro."""
    seeds_option = request.config.getoption("--fuzz-seeds")
    if seeds_option:
        seeds = [int(token) for token in str(seeds_option).split(",") if token.strip()]
    else:
        seeds = list(range(request.config.getoption("--fuzz-iterations")))
    failures = []
    for seed in seeds:
        try:
            run_trial(seed)
        except AssertionError as error:
            failures.append((seed, str(error).splitlines()[0]))
    if failures:
        lines = [f"{len(failures)} of {len(seeds)} fuzz trials diverged:"]
        for seed, message in failures:
            lines.append(
                f"  seed {seed}: {message}\n"
                f"    repro: python -m pytest "
                f"tests/test_simulator_fuzz.py::test_differential_fuzz "
                f"--fuzz-seeds={seed}"
            )
        pytest.fail("\n".join(lines))


def test_harness_detects_divergence(monkeypatch):
    """The harness itself must fail loudly if an engine ever lies."""
    from repro.routing.batchsim import simulate_batch as real

    def corrupted(requests, engine="auto"):
        results = real(requests, engine=engine)
        if results and results[0].gate_start:
            results[0].gate_start[0] += 1
        return results

    monkeypatch.setattr("test_simulator_fuzz.simulate_batch", corrupted)
    with pytest.raises(AssertionError, match="diverged"):
        run_trial(0)
