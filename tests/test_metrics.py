"""Unit tests for mapping metrics (repro.graphs.metrics)."""

import random

import networkx as nx
import pytest

from repro.graphs import (
    MappingCostTracker,
    average_edge_length,
    average_edge_spacing,
    average_edge_spacing_reference,
    bucket_auto_sizing_count,
    count_edge_crossings,
    count_edge_crossings_reference,
    edge_midpoint,
    euclidean_distance,
    manhattan_distance,
    mapping_cost,
    mapping_metrics,
    pearson_correlation,
    segments_intersect,
    total_edge_length,
)


def square_graph():
    """Four vertices on a unit square with the two diagonals as edges."""
    graph = nx.Graph()
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    positions = {0: (0.0, 0.0), 1: (0.0, 1.0), 2: (1.0, 1.0), 3: (1.0, 0.0)}
    return graph, positions


class TestDistances:
    def test_manhattan(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5

    def test_euclidean(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_midpoint(self):
        assert edge_midpoint((0, 0), (2, 4)) == (1.0, 2.0)


class TestEdgeLength:
    def test_total_edge_length_weighted(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=3)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        assert total_edge_length(graph, positions) == 6.0
        assert total_edge_length(graph, positions, weighted=False) == 2.0

    def test_average_edge_length(self):
        graph, positions = square_graph()
        assert average_edge_length(graph, positions) == pytest.approx(2.0)

    def test_average_edge_length_empty_graph(self):
        assert average_edge_length(nx.Graph(), {}) == 0.0

    def test_unplaced_endpoint_raises(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        with pytest.raises(KeyError):
            count_edge_crossings(graph, {0: (0.0, 0.0)})


class TestEdgeSpacing:
    def test_spacing_of_parallel_edges(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        positions = {0: (0.0, 0.0), 1: (0.0, 2.0), 2: (3.0, 0.0), 3: (3.0, 2.0)}
        # Midpoints are (0,1) and (3,1): spacing 3.
        assert average_edge_spacing(graph, positions) == pytest.approx(3.0)

    def test_spacing_needs_two_edges(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        assert average_edge_spacing(graph, {0: (0.0, 0.0), 1: (1.0, 0.0)}) == 0.0


class TestCrossings:
    def test_diagonals_cross(self):
        graph, positions = square_graph()
        assert count_edge_crossings(graph, positions) == 1

    def test_shared_endpoint_is_not_a_crossing(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0), 2: (2.0, 0.0)}
        assert count_edge_crossings(graph, positions) == 0

    def test_parallel_edges_do_not_cross(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        positions = {0: (0.0, 0.0), 1: (0.0, 5.0), 2: (1.0, 0.0), 3: (1.0, 5.0)}
        assert count_edge_crossings(graph, positions) == 0

    def test_segments_intersect_basic(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_collinear_overlap_counts(self):
        assert segments_intersect((0, 0), (3, 0), (1, 0), (4, 0))

    def test_shared_endpoint_excluded(self):
        assert not segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))


class TestCoincidentPositions:
    """Endpoint exclusion is by graph vertex identity, not coordinates.

    Regression for the old coordinate-based exclusion in
    ``segments_intersect``: edges between four distinct vertices must count
    even when some endpoints coincide in position.
    """

    def test_touching_edges_between_distinct_vertices_count(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        # Vertex 2 sits exactly on vertex 1's coordinates; the segments
        # touch at (2.0, 2.0).  No shared qubit => a geometric crossing.
        positions = {
            0: (0.0, 0.0),
            1: (2.0, 2.0),
            2: (2.0, 2.0),
            3: (0.0, 4.0),
        }
        assert count_edge_crossings(graph, positions) == 1
        assert count_edge_crossings_reference(graph, positions) == 1

    def test_proper_crossing_with_coincident_endpoint(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        # Vertex 2 coincides with vertex 0 and the segments overlap
        # collinearly between (1,1) and (2,2).
        positions = {
            0: (1.0, 1.0),
            1: (2.0, 2.0),
            2: (1.0, 1.0),
            3: (3.0, 3.0),
        }
        assert count_edge_crossings(graph, positions) == 1
        assert count_edge_crossings_reference(graph, positions) == 1

    def test_shared_vertex_still_excluded_even_when_moved(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0), 2: (2.0, 0.0)}
        assert count_edge_crossings(graph, positions) == 0


def _random_case(trial, rng):
    """A random graph and position map; every third trial is grid-snapped.

    Snapped coordinates produce coincident vertices, collinear overlaps and
    on-segment endpoints — the degenerate cases the bucketed engine must
    agree on with the brute-force oracle.
    """
    n = rng.randrange(5, 40)
    m = rng.randrange(0, min(90, n * (n - 1) // 2))
    graph = nx.gnm_random_graph(n, m, seed=trial)
    if trial % 3 == 0:
        positions = {
            v: (float(rng.randrange(0, 8)), float(rng.randrange(0, 8)))
            for v in graph.nodes()
        }
    else:
        positions = {
            v: (rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0))
            for v in graph.nodes()
        }
    return graph, positions


class TestBucketedParity:
    """The bucketed engine matches the brute-force ``_reference`` oracle."""

    def test_crossings_match_reference_randomized(self):
        rng = random.Random(7)
        for trial in range(40):
            graph, positions = _random_case(trial, rng)
            assert count_edge_crossings(graph, positions) == (
                count_edge_crossings_reference(graph, positions)
            ), f"trial {trial}"

    def test_crossings_match_reference_any_bucket_size(self):
        rng = random.Random(3)
        graph, positions = _random_case(2, rng)
        expected = count_edge_crossings_reference(graph, positions)
        for bucket in (0.5, 1.0, 2.0, 5.0, 50.0):
            assert (
                count_edge_crossings(graph, positions, bucket_size=bucket) == expected
            )

    def test_non_positive_bucket_size_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0), 2: (0.0, 1.0), 3: (1.0, 0.0)}
        for bucket in (0.0, -1.0):
            with pytest.raises(ValueError):
                count_edge_crossings(graph, positions, bucket_size=bucket)
            with pytest.raises(ValueError):
                MappingCostTracker(graph, positions, bucket_size=bucket)

    def test_spacing_matches_reference_randomized(self):
        rng = random.Random(11)
        for trial in range(20):
            graph, positions = _random_case(trial, rng)
            assert average_edge_spacing(graph, positions) == pytest.approx(
                average_edge_spacing_reference(graph, positions), rel=1e-9, abs=1e-12
            )

    def test_spacing_matches_reference_large_graph(self):
        # >= 64 edges exercises the vectorised block summation.
        graph = nx.gnm_random_graph(40, 200, seed=5)
        rng = random.Random(5)
        positions = {
            v: (rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0))
            for v in graph.nodes()
        }
        assert average_edge_spacing(graph, positions) == pytest.approx(
            average_edge_spacing_reference(graph, positions), rel=1e-9
        )

    def test_collinear_overlap_parity(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        graph.add_edge(4, 5)
        positions = {
            0: (0.0, 0.0),
            1: (0.0, 3.0),
            2: (0.0, 1.0),
            3: (0.0, 4.0),
            4: (0.0, 2.0),
            5: (0.0, 5.0),
        }
        expected = count_edge_crossings_reference(graph, positions)
        assert count_edge_crossings(graph, positions) == expected == 3

    def test_self_loops_are_ignored(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        graph.add_edge(1, 2)
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (1.0, 5.0)}
        assert count_edge_crossings(graph, positions) == 0
        assert count_edge_crossings_reference(graph, positions) == 0


class TestMappingCostTracker:
    """The incremental tracker equals a from-scratch recompute at every step."""

    def _assert_matches_recompute(self, tracker, graph, positions):
        metrics = mapping_metrics(graph, positions)
        tracked = tracker.metrics()
        assert tracked["edge_crossings"] == metrics["edge_crossings"]
        assert tracked["average_edge_length"] == pytest.approx(
            metrics["average_edge_length"], rel=1e-9, abs=1e-12
        )
        assert tracked["average_edge_spacing"] == pytest.approx(
            metrics["average_edge_spacing"], rel=1e-9, abs=1e-12
        )
        assert tracker.cost() == pytest.approx(
            mapping_cost(graph, positions), rel=1e-9
        )

    def test_matches_recompute_over_move_sequence(self):
        rng = random.Random(13)
        for trial in range(5):
            graph = nx.gnm_random_graph(18, 40, seed=trial)
            positions = {
                v: (float(rng.randrange(0, 10)), float(rng.randrange(0, 10)))
                for v in graph.nodes()
            }
            tracker = MappingCostTracker(graph, positions)
            nodes = list(graph.nodes())
            for _step in range(50):
                vertex = rng.choice(nodes)
                new = (float(rng.randrange(0, 10)), float(rng.randrange(0, 10)))
                positions[vertex] = new
                tracker.apply({vertex: new})
                self._assert_matches_recompute(tracker, graph, positions)

    def test_matches_recompute_vectorised_path(self):
        # >= 64 edges switches the tracker to its numpy crossing test.
        rng = random.Random(17)
        graph = nx.gnm_random_graph(50, 120, seed=0)
        positions = {
            v: (float(rng.randrange(0, 12)), float(rng.randrange(0, 12)))
            for v in graph.nodes()
        }
        tracker = MappingCostTracker(graph, positions)
        nodes = list(graph.nodes())
        for _step in range(40):
            vertex = rng.choice(nodes)
            new = (float(rng.randrange(0, 12)), float(rng.randrange(0, 12)))
            positions[vertex] = new
            tracker.apply({vertex: new})
        self._assert_matches_recompute(tracker, graph, positions)

    def test_swap_updates_both_vertices(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        positions = {0: (0.0, 0.0), 1: (0.0, 1.0), 2: (1.0, 0.0), 3: (1.0, 1.0)}
        tracker = MappingCostTracker(graph, positions)
        updates = {1: (1.0, 1.0), 3: (0.0, 1.0)}
        tracker.apply(updates)
        positions.update(updates)
        self._assert_matches_recompute(tracker, graph, positions)

    def test_revert_last_restores_state_exactly(self):
        rng = random.Random(31)
        graph = nx.gnm_random_graph(20, 45, seed=31)
        positions = {
            v: (float(rng.randrange(0, 10)), float(rng.randrange(0, 10)))
            for v in graph.nodes()
        }
        tracker = MappingCostTracker(graph, positions)
        nodes = list(graph.nodes())
        for _step in range(30):
            crossings = tracker.crossings
            spacing = tracker.spacing_sum
            length = tracker.total_edge_length
            cost = tracker.cost()
            vertex = rng.choice(nodes)
            tracker.apply(
                {vertex: (float(rng.randrange(0, 10)), float(rng.randrange(0, 10)))}
            )
            tracker.revert_last()
            # Bit-exact restore (snapshots, not arithmetic inverses).
            assert tracker.crossings == crossings
            assert tracker.spacing_sum == spacing
            assert tracker.total_edge_length == length
            assert tracker.cost() == cost
            self._assert_matches_recompute(tracker, graph, positions)

    def test_revert_last_is_one_shot(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        tracker = MappingCostTracker(graph, {0: (0.0, 0.0), 1: (1.0, 0.0)})
        tracker.apply({0: (2.0, 2.0)})
        tracker.revert_last()
        with pytest.raises(RuntimeError):
            tracker.revert_last()

    def test_revert_after_isolated_move_restores_position(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_edge(1, 2)
        tracker = MappingCostTracker(
            graph, {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 0.0)}
        )
        tracker.apply({0: (5.0, 5.0)})
        tracker.revert_last()
        assert tracker.position(0) == (0.0, 0.0)

    def test_inverse_apply_reverts(self):
        graph = nx.gnm_random_graph(12, 25, seed=4)
        rng = random.Random(4)
        positions = {
            v: (float(rng.randrange(0, 8)), float(rng.randrange(0, 8)))
            for v in graph.nodes()
        }
        tracker = MappingCostTracker(graph, positions)
        crossings_before = tracker.crossings
        cost_before = tracker.cost()
        old = tracker.position(3)
        delta = tracker.apply({3: (7.0, 7.0)})
        delta_back = tracker.apply({3: old})
        assert tracker.crossings == crossings_before
        assert tracker.cost() == pytest.approx(cost_before, rel=1e-12)
        assert delta + delta_back == pytest.approx(0.0, abs=1e-9)

    def test_delta_equals_cost_difference(self):
        graph = nx.gnm_random_graph(15, 30, seed=9)
        rng = random.Random(9)
        positions = {
            v: (float(rng.randrange(0, 9)), float(rng.randrange(0, 9)))
            for v in graph.nodes()
        }
        tracker = MappingCostTracker(graph, positions)
        before = tracker.cost()
        delta = tracker.apply({0: (8.0, 8.0)})
        assert delta == pytest.approx(tracker.cost() - before, rel=1e-12)

    def test_isolated_vertex_moves_freely(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_edge(1, 2)
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 0.0)}
        tracker = MappingCostTracker(graph, positions)
        assert tracker.apply({0: (5.0, 5.0)}) == 0.0
        assert tracker.position(0) == (5.0, 5.0)

    def test_unknown_vertex_ignored(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
        tracker = MappingCostTracker(graph, positions)
        assert tracker.apply({99: (3.0, 3.0)}) == 0.0

    def test_unplaced_endpoint_raises(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        with pytest.raises(KeyError):
            MappingCostTracker(graph, {0: (0.0, 0.0)})

    def test_weighted_length_tracked_through_moves(self):
        rng = random.Random(21)
        graph = nx.gnm_random_graph(14, 30, seed=21)
        for a, b in graph.edges():
            graph[a][b]["weight"] = rng.randrange(1, 5)
        positions = {
            v: (float(rng.randrange(0, 9)), float(rng.randrange(0, 9)))
            for v in graph.nodes()
        }
        tracker = MappingCostTracker(graph, positions)
        nodes = list(graph.nodes())
        for _step in range(40):
            vertex = rng.choice(nodes)
            new = (float(rng.randrange(0, 9)), float(rng.randrange(0, 9)))
            positions[vertex] = new
            tracker.apply({vertex: new})
            assert tracker.total_weighted_length == pytest.approx(
                total_edge_length(graph, positions, weighted=True), rel=1e-9
            )

    def test_self_loop_graph_matches_mapping_cost(self):
        # Self-loops must be ignored consistently by every metric, so the
        # tracker's cost stays identical to mapping_cost on loopy graphs.
        graph = nx.Graph()
        graph.add_edge(0, 0)
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        positions = {
            0: (0.0, 0.0),
            1: (1.0, 0.0),
            2: (1.0, 3.0),
            3: (2.0, 0.0),
            4: (2.0, 3.0),
        }
        tracker = MappingCostTracker(graph, positions)
        self._assert_matches_recompute(tracker, graph, positions)
        positions[0] = (5.0, 5.0)
        tracker.apply({0: (5.0, 5.0)})
        self._assert_matches_recompute(tracker, graph, positions)


class TestBucketSizingMemo:
    """Auto bucket sizing is memoized per (graph, edge count, extent)."""

    def test_repeat_builds_reuse_the_memoized_size(self):
        graph, positions = square_graph()
        first = MappingCostTracker(graph, dict(positions))
        before = bucket_auto_sizing_count()
        repeat = MappingCostTracker(graph, dict(positions))
        assert bucket_auto_sizing_count() == before  # no re-scan
        assert repeat.crossings == first.crossings
        assert repeat.cost() == first.cost()

    def test_extent_change_invalidates_the_memo(self):
        graph, positions = square_graph()
        MappingCostTracker(graph, dict(positions))
        before = bucket_auto_sizing_count()
        stretched = {v: (r * 10.0, c * 10.0) for v, (r, c) in positions.items()}
        MappingCostTracker(graph, stretched)
        assert bucket_auto_sizing_count() == before + 1

    def test_explicit_bucket_size_skips_the_sizing_scan(self):
        graph, positions = square_graph()
        before = bucket_auto_sizing_count()
        MappingCostTracker(graph, dict(positions), bucket_size=2.0)
        assert bucket_auto_sizing_count() == before

    def test_same_extent_other_graph_sizes_independently(self):
        graph, positions = square_graph()
        MappingCostTracker(graph, dict(positions))
        other, other_positions = square_graph()
        before = bucket_auto_sizing_count()
        MappingCostTracker(other, dict(other_positions))
        assert bucket_auto_sizing_count() == before + 1


class TestCostAndCorrelation:
    def test_mapping_metrics_keys(self):
        graph, positions = square_graph()
        metrics = mapping_metrics(graph, positions)
        assert set(metrics) == {
            "edge_crossings",
            "average_edge_length",
            "average_edge_spacing",
        }

    def test_mapping_cost_penalises_crossings(self):
        graph, crossing_positions = square_graph()
        # Re-draw the same graph without a crossing.
        flat_positions = {0: (0.0, 0.0), 2: (0.0, 1.0), 1: (1.0, 0.0), 3: (1.0, 1.0)}
        assert mapping_cost(graph, crossing_positions) > mapping_cost(
            graph, flat_positions
        )

    def test_pearson_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_zero_variance(self):
        assert pearson_correlation([1, 1, 1], [2, 4, 6]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_pearson_tiny_sample(self):
        assert pearson_correlation([1], [2]) == 0.0
