"""Unit tests for mapping metrics (repro.graphs.metrics)."""

import networkx as nx
import pytest

from repro.graphs import (
    average_edge_length,
    average_edge_spacing,
    count_edge_crossings,
    edge_midpoint,
    euclidean_distance,
    manhattan_distance,
    mapping_cost,
    mapping_metrics,
    pearson_correlation,
    segments_intersect,
    total_edge_length,
)


def square_graph():
    """Four vertices on a unit square with the two diagonals as edges."""
    graph = nx.Graph()
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    positions = {0: (0.0, 0.0), 1: (0.0, 1.0), 2: (1.0, 1.0), 3: (1.0, 0.0)}
    return graph, positions


class TestDistances:
    def test_manhattan(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5

    def test_euclidean(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_midpoint(self):
        assert edge_midpoint((0, 0), (2, 4)) == (1.0, 2.0)


class TestEdgeLength:
    def test_total_edge_length_weighted(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=3)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        assert total_edge_length(graph, positions) == 6.0
        assert total_edge_length(graph, positions, weighted=False) == 2.0

    def test_average_edge_length(self):
        graph, positions = square_graph()
        assert average_edge_length(graph, positions) == pytest.approx(2.0)

    def test_average_edge_length_empty_graph(self):
        assert average_edge_length(nx.Graph(), {}) == 0.0

    def test_unplaced_endpoint_raises(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        with pytest.raises(KeyError):
            count_edge_crossings(graph, {0: (0.0, 0.0)})


class TestEdgeSpacing:
    def test_spacing_of_parallel_edges(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        positions = {0: (0.0, 0.0), 1: (0.0, 2.0), 2: (3.0, 0.0), 3: (3.0, 2.0)}
        # Midpoints are (0,1) and (3,1): spacing 3.
        assert average_edge_spacing(graph, positions) == pytest.approx(3.0)

    def test_spacing_needs_two_edges(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        assert average_edge_spacing(graph, {0: (0.0, 0.0), 1: (1.0, 0.0)}) == 0.0


class TestCrossings:
    def test_diagonals_cross(self):
        graph, positions = square_graph()
        assert count_edge_crossings(graph, positions) == 1

    def test_shared_endpoint_is_not_a_crossing(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0), 2: (2.0, 0.0)}
        assert count_edge_crossings(graph, positions) == 0

    def test_parallel_edges_do_not_cross(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        positions = {0: (0.0, 0.0), 1: (0.0, 5.0), 2: (1.0, 0.0), 3: (1.0, 5.0)}
        assert count_edge_crossings(graph, positions) == 0

    def test_segments_intersect_basic(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_collinear_overlap_counts(self):
        assert segments_intersect((0, 0), (3, 0), (1, 0), (4, 0))

    def test_shared_endpoint_excluded(self):
        assert not segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))


class TestCostAndCorrelation:
    def test_mapping_metrics_keys(self):
        graph, positions = square_graph()
        metrics = mapping_metrics(graph, positions)
        assert set(metrics) == {
            "edge_crossings",
            "average_edge_length",
            "average_edge_spacing",
        }

    def test_mapping_cost_penalises_crossings(self):
        graph, crossing_positions = square_graph()
        # Re-draw the same graph without a crossing.
        flat_positions = {0: (0.0, 0.0), 2: (0.0, 1.0), 1: (1.0, 0.0), 3: (1.0, 1.0)}
        assert mapping_cost(graph, crossing_positions) > mapping_cost(
            graph, flat_positions
        )

    def test_pearson_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_zero_variance(self):
        assert pearson_correlation([1, 1, 1], [2, 4, 6]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_pearson_tiny_sample(self):
        assert pearson_correlation([1], [2]) == 0.0
