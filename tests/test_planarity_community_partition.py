"""Unit tests for planarity, community detection and graph partitioning."""

import networkx as nx
import pytest

from repro.graphs import (
    bisect,
    community_centroid,
    community_fragmentation,
    community_of,
    contract,
    cut_weight,
    detect_communities,
    heavy_edge_matching,
    interaction_graph,
    is_planar,
    kmeans,
    module_interaction_graphs,
    modules_are_disjoint,
    planar_embedding_positions,
    planar_round_fraction,
    recursive_bisection,
    round_interaction_graphs,
)


class TestPlanarity:
    def test_single_level_interaction_graph_is_planar(self, single_level_k4):
        graph = interaction_graph(single_level_k4.circuit)
        assert is_planar(graph)

    def test_single_level_k8_planar(self, single_level_k8):
        assert is_planar(interaction_graph(single_level_k8.circuit))

    def test_per_round_graphs_are_planar(self, two_level_cap4):
        assert planar_round_fraction(two_level_cap4) == 1.0

    def test_round_graph_count_matches_levels(self, two_level_cap4):
        assert len(round_interaction_graphs(two_level_cap4)) == 2

    def test_modules_within_round_never_interact(self, two_level_cap4):
        assert modules_are_disjoint(two_level_cap4, 1)
        assert modules_are_disjoint(two_level_cap4, 2)

    def test_module_subgraphs_are_planar(self, two_level_cap4):
        for module_graph in module_interaction_graphs(two_level_cap4, 1):
            assert is_planar(module_graph)

    def test_planar_embedding_positions_no_crossings(self, single_level_k4):
        from repro.graphs import count_edge_crossings

        graph = interaction_graph(single_level_k4.circuit)
        positions = planar_embedding_positions(graph)
        assert count_edge_crossings(graph, positions) == 0

    def test_k5_is_not_planar(self):
        assert not is_planar(nx.complete_graph(5))


class TestCommunityDetection:
    def two_cliques(self):
        graph = nx.Graph()
        for offset in (0, 10):
            for i in range(4):
                for j in range(i + 1, 4):
                    graph.add_edge(offset + i, offset + j, weight=1)
        graph.add_edge(0, 10, weight=1)
        return graph

    def test_detects_two_cliques(self):
        communities = detect_communities(self.two_cliques())
        assert len(communities) == 2
        assert sorted(map(sorted, communities)) == [[0, 1, 2, 3], [10, 11, 12, 13]]

    def test_isolated_vertices_grouped(self):
        graph = self.two_cliques()
        graph.add_node(99)
        communities = detect_communities(graph)
        assert any(99 in community for community in communities)

    def test_max_communities_merges_smallest(self):
        graph = self.two_cliques()
        graph.add_node(99)
        communities = detect_communities(graph, max_communities=2)
        assert len(communities) == 2

    def test_empty_graph(self):
        assert detect_communities(nx.Graph()) == []

    def test_community_of_inversion(self):
        assignment = community_of([[1, 2], [3]])
        assert assignment == {1: 0, 2: 0, 3: 1}

    def test_community_centroid(self):
        positions = {1: (0.0, 0.0), 2: (2.0, 2.0)}
        assert community_centroid([1, 2], positions) == (1.0, 1.0)

    def test_community_centroid_unplaced(self):
        assert community_centroid([7], {}) == (0.0, 0.0)


class TestKMeans:
    def test_two_well_separated_clusters(self):
        points = [(0.0, 0.0), (0.1, 0.2), (10.0, 10.0), (10.2, 9.9)]
        centroids, assignment = kmeans(points, 2, seed=1)
        assert len(centroids) == 2
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_more_clusters_than_points(self):
        centroids, assignment = kmeans([(0.0, 0.0)], 3)
        assert len(centroids) == 1
        assert assignment == [0]

    def test_empty_points(self):
        assert kmeans([], 2) == ([], [])

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            kmeans([(0.0, 0.0)], 0)

    def test_fragmentation_detects_split_community(self):
        positions = {i: (0.0, float(i)) for i in range(3)}
        positions.update({i: (20.0, float(i)) for i in range(3, 6)})
        centroids, clusters = community_fragmentation(list(range(6)), positions)
        assert len(clusters) == 2

    def test_fragmentation_contiguous_community(self):
        positions = {i: (0.0, float(i)) for i in range(4)}
        centroids, clusters = community_fragmentation(list(range(4)), positions)
        assert len(clusters) == 1


class TestGraphPartitioning:
    def barbell(self):
        return nx.barbell_graph(6, 0)

    def test_heavy_edge_matching_covers_all_vertices(self):
        graph = self.barbell()
        groups = heavy_edge_matching(graph, seed=1)
        flattened = [v for group in groups for v in group]
        assert sorted(flattened) == sorted(graph.nodes())

    def test_contract_preserves_total_size(self):
        graph = self.barbell()
        groups = heavy_edge_matching(graph, seed=1)
        coarse, membership = contract(graph, groups)
        assert sum(coarse.nodes[n]["size"] for n in coarse) == graph.number_of_nodes()
        assert set(membership) == set(graph.nodes())

    def test_bisect_barbell_cuts_the_bridge(self):
        graph = self.barbell()
        result = bisect(graph, seed=3)
        assert result.cut_weight == 1
        assert abs(len(result.left) - len(result.right)) <= 1

    def test_bisect_balance(self):
        graph = nx.grid_2d_graph(4, 4)
        graph = nx.convert_node_labels_to_integers(graph)
        result = bisect(graph, seed=0)
        assert abs(len(result.left) - len(result.right)) <= 2

    def test_bisect_single_vertex(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = bisect(graph)
        assert result.left == [0]
        assert result.right == []

    def test_cut_weight(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2)
        graph.add_edge(1, 2, weight=5)
        assert cut_weight(graph, {0}) == 2
        assert cut_weight(graph, {0, 1}) == 5

    def test_recursive_bisection_covers_all_vertices(self):
        graph = nx.grid_2d_graph(4, 6)
        graph = nx.convert_node_labels_to_integers(graph)
        blocks = recursive_bisection(graph, 4, seed=0)
        assert len(blocks) == 4
        assert sorted(v for block in blocks for v in block) == sorted(graph.nodes())

    def test_recursive_bisection_single_part(self):
        graph = nx.path_graph(5)
        blocks = recursive_bisection(graph, 1)
        assert blocks == [[0, 1, 2, 3, 4]]

    def test_recursive_bisection_invalid_parts(self):
        with pytest.raises(ValueError):
            recursive_bisection(nx.path_graph(3), 0)

    def test_recursive_bisection_non_power_of_two(self):
        graph = nx.cycle_graph(9)
        blocks = recursive_bisection(graph, 3, seed=2)
        assert len(blocks) == 3
        assert sorted(v for block in blocks for v in block) == sorted(graph.nodes())
