"""Unit tests for the analysis layer (volume, correlation, sweeps)."""

import pytest

from repro.analysis import (
    MAPPING_METHODS,
    best_volume_by_method,
    capacity_sweep,
    collect_samples,
    correlation_study,
    evaluate_factory_mapping,
    evaluate_mapping,
    format_sweep_table,
    mapping_area,
    occupied_bounding_box,
)
from repro.mapping import Placement
from repro.routing import SimulatorConfig


class TestVolumeAccounting:
    def test_bounding_box_empty(self):
        box = occupied_bounding_box(Placement(width=5, height=5))
        assert box["area"] == 0

    def test_bounding_box_tight(self):
        placement = Placement(width=10, height=10, positions={0: (2, 3), 1: (4, 7)})
        box = occupied_bounding_box(placement)
        assert box["height"] == 3
        assert box["width"] == 5
        assert box["area"] == 15

    def test_mapping_area_ignores_unused_grid(self):
        placement = Placement(width=100, height=100, positions={0: (0, 0), 1: (1, 1)})
        assert mapping_area(placement) == 4

    def test_evaluate_mapping(self, single_level_k4, k4_linear_placement):
        result = evaluate_mapping(single_level_k4.circuit, k4_linear_placement)
        assert result.latency > 0
        assert result.area == mapping_area(k4_linear_placement)
        assert result.volume == result.latency * result.area


class TestCorrelationStudy:
    def test_collect_samples_count(self, single_level_k4):
        samples = collect_samples(single_level_k4.circuit, num_mappings=5, seed=0)
        assert len(samples) == 5
        assert all(sample.latency > 0 for sample in samples)

    def test_samples_are_distinct(self, single_level_k4):
        samples = collect_samples(single_level_k4.circuit, num_mappings=5, seed=0)
        assert len({sample.edge_crossings for sample in samples}) > 1

    def test_correlation_study_r_values_in_range(self, single_level_k4):
        study = correlation_study(single_level_k4.circuit, num_mappings=8, seed=1)
        for r_value in study.as_dict().values():
            assert -1.0 <= r_value <= 1.0

    def test_correlation_study_deterministic(self, single_level_k4):
        first = correlation_study(single_level_k4.circuit, num_mappings=5, seed=3)
        second = correlation_study(single_level_k4.circuit, num_mappings=5, seed=3)
        assert first.as_dict() == second.as_dict()


class TestFactoryEvaluation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            evaluate_factory_mapping("bogus", 4)

    @pytest.mark.parametrize("method", ["random", "linear", "graph_partition"])
    def test_single_level_methods(self, method):
        evaluation = evaluate_factory_mapping(method, 4, levels=1, seed=0)
        assert evaluation.latency >= evaluation.critical_latency
        assert evaluation.volume == evaluation.latency * evaluation.area
        assert evaluation.method == method

    def test_volume_over_critical_at_least_one(self):
        evaluation = evaluate_factory_mapping("linear", 4, levels=1)
        assert evaluation.volume_over_critical >= 1.0

    def test_hierarchical_stitching_two_level(self):
        evaluation = evaluate_factory_mapping("hierarchical_stitching", 4, levels=2)
        assert evaluation.latency >= evaluation.critical_latency
        assert evaluation.area > 0

    def test_reuse_flag_changes_result(self):
        no_reuse = evaluate_factory_mapping("linear", 4, levels=2, reuse=False)
        reuse = evaluate_factory_mapping("linear", 4, levels=2, reuse=True)
        assert reuse.area <= no_reuse.area

    def test_sim_config_propagates(self):
        fast = evaluate_factory_mapping(
            "linear", 4, levels=1, sim_config=SimulatorConfig(max_candidates=8)
        )
        strict = evaluate_factory_mapping(
            "linear", 4, levels=1, sim_config=SimulatorConfig(max_candidates=1)
        )
        assert fast.latency <= strict.latency


class TestSweeps:
    def test_mapping_methods_registry(self):
        assert "hierarchical_stitching" in MAPPING_METHODS
        assert "linear" in MAPPING_METHODS

    def test_capacity_sweep_shape(self):
        results = capacity_sweep(["linear", "graph_partition"], [2, 4], levels=1)
        assert len(results) == 4
        assert {r.capacity for r in results} == {2, 4}

    def test_best_volume_by_method_picks_minimum(self):
        results = capacity_sweep(["linear"], [4], levels=2, reuse=False)
        results += capacity_sweep(["linear"], [4], levels=2, reuse=True)
        best = best_volume_by_method(results)
        assert best["linear"][4].volume == min(r.volume for r in results)

    def test_format_sweep_table(self):
        results = capacity_sweep(["linear"], [2, 4], levels=1)
        table = format_sweep_table(results, value="volume")
        assert "K=2" in table and "K=4" in table
        assert "Line" in table

    def test_format_sweep_table_rejects_bad_field(self):
        results = capacity_sweep(["linear"], [2], levels=1)
        with pytest.raises(ValueError):
            format_sweep_table(results, value="bogus")

    def test_linear_single_level_close_to_bound(self):
        evaluation = evaluate_factory_mapping("linear", 8, levels=1)
        # The hand layout should stay within a small factor of the bound.
        assert evaluation.volume_over_critical < 3.0
