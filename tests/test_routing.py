"""Unit tests for the mesh, braid paths and router (repro.routing)."""

import pytest

from repro.routing import (
    BraidPath,
    BraidRouter,
    Mesh,
    bfs_detour,
    is_channel_cell,
    lattice_to_tile,
    rectilinear_candidates,
    tile_to_lattice,
)


def make_mesh(positions, width=6, height=6):
    return Mesh.from_placement(positions, width=width, height=height)


class TestLatticeCoordinates:
    def test_tile_to_lattice_roundtrip(self):
        for cell in [(0, 0), (2, 3), (5, 1)]:
            assert lattice_to_tile(tile_to_lattice(cell)) == cell

    def test_tile_cells_are_odd(self):
        row, col = tile_to_lattice((3, 4))
        assert row % 2 == 1 and col % 2 == 1

    def test_channel_cell_classification(self):
        assert is_channel_cell((0, 5))
        assert is_channel_cell((4, 2))
        assert not is_channel_cell((1, 1))

    def test_lattice_to_tile_rejects_channels(self):
        with pytest.raises(ValueError):
            lattice_to_tile((0, 1))


class TestMesh:
    def test_dimensions(self):
        mesh = make_mesh({0: (0, 0)}, width=4, height=3)
        assert mesh.lattice_width == 9
        assert mesh.lattice_height == 7
        assert mesh.area_tiles == 12

    def test_qubit_cells(self):
        mesh = make_mesh({7: (2, 3)})
        assert mesh.qubit_cell(7) == (5, 7)

    def test_out_of_bounds_placement_rejected(self):
        with pytest.raises(ValueError):
            make_mesh({0: (7, 0)}, width=4, height=4)

    def test_neighbors_clipped_at_borders(self):
        mesh = make_mesh({0: (0, 0)}, width=2, height=2)
        assert len(mesh.neighbors((0, 0))) == 2
        assert len(mesh.neighbors((2, 2))) == 4

    def test_channel_utilisation(self):
        mesh = make_mesh({0: (0, 0), 1: (1, 1)}, width=2, height=2)
        assert mesh.channel_utilisation([]) == 0.0
        assert mesh.channel_utilisation([(0, 0), (0, 1)]) > 0.0


class TestBraidPath:
    def test_conflict_detection(self):
        first = BraidPath.from_cells([(0, 0), (0, 1)], endpoints=[(0, 0)])
        second = BraidPath.from_cells([(0, 1), (0, 2)], endpoints=[(0, 2)])
        third = BraidPath.from_cells([(5, 5)], endpoints=[(5, 5)])
        assert first.conflicts_with(second)
        assert not first.conflicts_with(third)

    def test_conflicts_with_cells(self):
        braid = BraidPath.from_cells([(1, 1), (1, 2)], endpoints=[(1, 1)])
        assert braid.conflicts_with_cells(frozenset({(1, 2)}))
        assert not braid.conflicts_with_cells(frozenset({(9, 9)}))

    def test_union_merges_footprints(self):
        first = BraidPath.from_cells([(0, 0)], endpoints=[(0, 0)])
        second = BraidPath.from_cells([(2, 2)], endpoints=[(2, 2)], hop=(1, 1))
        union = first.union(second)
        assert union.cells == frozenset({(0, 0), (2, 2)})
        assert union.hop == (1, 1)

    def test_length(self):
        braid = BraidPath.from_cells([(0, 0), (0, 1), (0, 2)], endpoints=[(0, 0)])
        assert braid.length == 3


class TestRectilinearCandidates:
    def test_candidates_connect_endpoints(self):
        mesh = make_mesh({0: (0, 0), 1: (3, 4)})
        source, target = mesh.qubit_cell(0), mesh.qubit_cell(1)
        for path in rectilinear_candidates(mesh, source, target):
            assert path[0] == source
            assert path[-1] == target
            for a, b in zip(path, path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_candidates_avoid_other_tiles(self):
        # A qubit sits directly between source and target; candidate paths
        # must not pass through its tile cell.
        mesh = make_mesh({0: (2, 0), 1: (2, 2), 2: (2, 4)})
        blocker = mesh.qubit_cell(1)
        for path in rectilinear_candidates(
            mesh, mesh.qubit_cell(0), mesh.qubit_cell(2)
        ):
            assert blocker not in path

    def test_candidates_stay_in_bounds(self):
        mesh = make_mesh({0: (0, 0), 1: (5, 5)})
        for path in rectilinear_candidates(
            mesh, mesh.qubit_cell(0), mesh.qubit_cell(1)
        ):
            for cell in path:
                assert mesh.in_bounds(cell)

    def test_adjacent_qubits(self):
        mesh = make_mesh({0: (1, 1), 1: (1, 2)})
        candidates = rectilinear_candidates(
            mesh, mesh.qubit_cell(0), mesh.qubit_cell(1)
        )
        assert candidates


class TestRouter:
    def test_route_pair_unblocked(self):
        mesh = make_mesh({0: (0, 0), 1: (4, 4)})
        router = BraidRouter(mesh)
        path = router.route_pair(0, 1, frozenset())
        assert path is not None
        assert mesh.qubit_cell(0) in path.cells
        assert mesh.qubit_cell(1) in path.cells

    def test_route_pair_blocked_returns_none(self):
        mesh = make_mesh({0: (2, 0), 1: (2, 5)}, width=6, height=6)
        router = BraidRouter(mesh, max_candidates=2)
        direct = router.route_pair(0, 1, frozenset())
        # Lock everything the direct candidates would use.
        blocked = router.route_pair(
            0, 1, frozenset(direct.cells - set(direct.endpoints))
        )
        assert blocked is None

    def test_detour_router_finds_alternative(self):
        mesh = make_mesh({0: (2, 0), 1: (2, 5)}, width=6, height=6)
        strict = BraidRouter(mesh, allow_detour=False, max_candidates=1)
        loose = BraidRouter(mesh, allow_detour=True, detour_slack=4.0, max_candidates=1)
        direct = strict.route_pair(0, 1, frozenset())
        locked = frozenset(direct.cells - set(direct.endpoints))
        assert strict.route_pair(0, 1, locked) is None
        assert loose.route_pair(0, 1, locked) is not None

    def test_route_with_hop_passes_through_hop(self):
        mesh = make_mesh({0: (0, 0), 1: (5, 5)})
        router = BraidRouter(mesh)
        path = router.route_pair(0, 1, frozenset(), hop=tile_to_lattice((2, 0)))
        assert path is not None
        assert tile_to_lattice((2, 0)) in path.cells

    def test_route_star_covers_all_targets(self):
        mesh = make_mesh({0: (2, 2), 1: (0, 0), 2: (0, 4), 3: (4, 4)})
        router = BraidRouter(mesh)
        star = router.route_star(0, [1, 2, 3], frozenset())
        assert star is not None
        for qubit in (0, 1, 2, 3):
            assert mesh.qubit_cell(qubit) in star.cells

    def test_route_star_blocked(self):
        mesh = make_mesh({0: (2, 2), 1: (2, 5)}, width=6, height=6)
        router = BraidRouter(mesh, max_candidates=1)
        direct = router.route_pair(0, 1, frozenset())
        locked = frozenset(direct.cells - set(direct.endpoints))
        assert router.route_star(0, [1], locked) is None

    def test_unconstrained_pair_deterministic(self):
        mesh = make_mesh({0: (0, 0), 1: (3, 3)})
        router = BraidRouter(mesh)
        assert (
            router.unconstrained_pair(0, 1).cells
            == router.unconstrained_pair(0, 1).cells
        )


class TestBfsDetour:
    def test_detour_avoids_blocked_cells(self):
        mesh = make_mesh({0: (0, 0), 1: (0, 4)}, width=6, height=2)
        source, target = mesh.qubit_cell(0), mesh.qubit_cell(1)
        blocked = frozenset({(1, 4)})
        path = bfs_detour(mesh, source, target, blocked)
        assert path is not None
        assert not (set(path) & blocked)

    def test_detour_respects_max_length(self):
        mesh = make_mesh({0: (0, 0), 1: (0, 4)}, width=6, height=2)
        source, target = mesh.qubit_cell(0), mesh.qubit_cell(1)
        assert bfs_detour(mesh, source, target, frozenset(), max_length=3) is None

    def test_detour_unreachable_returns_none(self):
        mesh = make_mesh({0: (0, 0), 1: (0, 2)}, width=3, height=1)
        source, target = mesh.qubit_cell(0), mesh.qubit_cell(1)
        # Wall of blocked cells across the full lattice column between them.
        blocked = frozenset({(row, 2) for row in range(mesh.lattice_height)} |
                            {(row, 3) for row in range(mesh.lattice_height)})
        assert bfs_detour(mesh, source, target, blocked) is None


class TestCellEncoding:
    """The stable cell <-> flat-int encoding behind occupancy bitmasks."""

    def test_index_roundtrip(self):
        mesh = make_mesh({0: (0, 0)}, width=4, height=3)
        for row in range(mesh.lattice_height):
            for col in range(mesh.lattice_width):
                index = mesh.cell_index((row, col))
                assert 0 <= index < mesh.num_lattice_cells
                assert mesh.index_cell(index) == (row, col)

    def test_cells_mask_roundtrip(self):
        mesh = make_mesh({0: (0, 0)}, width=4, height=3)
        cells = [(0, 0), (2, 5), (6, 8), (1, 3)]
        mask = mesh.cells_mask(cells)
        assert mesh.mask_cells(mask) == sorted(cells, key=mesh.cell_index)
        from repro.routing.mesh import popcount

        assert popcount(mask) == len(cells)

    def test_disjointness_matches_set_semantics(self):
        mesh = make_mesh({0: (0, 0)}, width=4, height=3)
        first = {(0, 0), (0, 1), (1, 1)}
        second = {(1, 1), (2, 2)}
        third = {(5, 5)}
        assert mesh.cells_mask(first) & mesh.cells_mask(second)
        assert not mesh.cells_mask(first) & mesh.cells_mask(third)

    def test_segment_mask_matches_straight_segment(self):
        from repro.routing.router import _straight_segment

        mesh = make_mesh({0: (0, 0)}, width=6, height=6)
        for start, end in [
            ((2, 1), (2, 9)),
            ((2, 9), (2, 1)),
            ((0, 4), (11, 4)),
            ((11, 4), (0, 4)),
            ((3, 3), (3, 3)),
        ]:
            assert mesh.segment_mask(start, end) == mesh.cells_mask(
                _straight_segment(start, end)
            )

    def test_segment_mask_rejects_diagonals(self):
        mesh = make_mesh({0: (0, 0)})
        with pytest.raises(ValueError):
            mesh.segment_mask((0, 0), (1, 1))


class TestMaskedRouter:
    """The mask-only routing layer must mirror the set-based decisions."""

    def test_mask_plan_matches_set_plan(self):
        import random

        rng = random.Random(5)
        positions = {q: (rng.randrange(6), q) for q in range(6)}
        mesh = make_mesh(positions, width=6, height=6)
        for max_candidates in (1, 2, 8):
            router = BraidRouter(mesh, max_candidates=max_candidates)
            for a in range(6):
                for b in range(6):
                    if a == b:
                        continue
                    source, target = mesh.qubit_cell(a), mesh.qubit_cell(b)
                    set_plan, set_best = router._pair_plan(source, target)
                    mask_plan, _ = router._mask_plan(source, target)
                    assert [mesh.cells_mask(cells) for _, cells in set_plan] == list(
                        mask_plan
                    )

    def test_route_pair_masked_agrees_with_set_router(self):
        import random

        rng = random.Random(9)
        mesh = make_mesh({0: (2, 0), 1: (2, 5), 2: (0, 3)}, width=6, height=6)
        all_cells = [
            (r, c)
            for r in range(mesh.lattice_height)
            for c in range(mesh.lattice_width)
        ]
        for trial in range(50):
            router = BraidRouter(mesh, max_candidates=rng.choice([1, 2, 8]))
            locked = frozenset(rng.sample(all_cells, rng.randint(0, 20)))
            locked_mask = mesh.cells_mask(locked)
            path = router.route_pair(0, 1, locked)
            routed, mask = router.route_pair_masked(0, 1, locked_mask)
            assert routed == (path is not None)
            if routed:
                assert mask == mesh.cells_mask(path.cells)
            else:
                # Watch-mask soundness: every watch cell is locked, and as
                # long as all of them stay locked every candidate stays
                # blocked, so the pair keeps failing.
                assert mask
                assert mask & locked_mask == mask
                candidates, _ = router._mask_plan(
                    mesh.qubit_cell(0), mesh.qubit_cell(1)
                )
                for candidate in candidates:
                    assert candidate & mask

    def test_route_star_masked_agrees_with_set_router(self):
        mesh = make_mesh({0: (2, 2), 1: (0, 0), 2: (0, 4), 3: (4, 4)})
        router = BraidRouter(mesh, max_candidates=1)
        star = router.route_star(0, [1, 2, 3], frozenset())
        routed, mask = router.route_star_masked(0, [1, 2, 3], 0)
        assert routed
        assert mask == mesh.cells_mask(star.cells)
        blocking = frozenset(star.cells - {mesh.qubit_cell(q) for q in (0, 1, 2, 3)})
        assert router.route_star(0, [1, 2, 3], blocking) is None
        routed, watch = router.route_star_masked(
            0, [1, 2, 3], mesh.cells_mask(blocking)
        )
        assert not routed
        assert watch

    def test_detour_failure_watches_full_locked_mask(self):
        mesh = make_mesh({0: (0, 0), 1: (0, 2)}, width=3, height=1)
        router = BraidRouter(mesh, allow_detour=True, max_candidates=1)
        # Wall off the target completely: no rectilinear candidate and no
        # BFS detour can reach it.
        blocked = {(row, 2) for row in range(mesh.lattice_height)}
        blocked |= {(row, 3) for row in range(mesh.lattice_height)}
        blocked -= {mesh.qubit_cell(0), mesh.qubit_cell(1)}
        locked_mask = mesh.cells_mask(blocked)
        routed, watch = router.route_pair_masked(0, 1, locked_mask)
        assert not routed
        # Any release might open a detour, so the gate watches everything.
        assert watch == locked_mask
