"""Tests for the experiment modules (one per paper figure/table) and the CLI."""

import pytest

from repro.cli import build_parser, main, run_experiment
from repro.experiments import (
    EXPERIMENTS,
    fig6_correlation,
    fig7_scaling,
    fig9_permutation,
    fig9_reuse,
    fig10_resources,
    table1_volumes,
)


class TestFig6:
    def test_run_and_format(self):
        result = fig6_correlation.run(capacity=4, num_mappings=6, seed=0)
        assert len(result.study.samples) == 6
        text = fig6_correlation.format_result(result)
        assert "edge crossings" in text

    def test_paper_reference_present(self):
        result = fig6_correlation.run(capacity=4, num_mappings=4, seed=0)
        assert result.paper["edge_crossings_r"] == pytest.approx(0.831)


class TestFig7:
    def test_single_level_series(self):
        result = fig7_scaling.run_single_level(capacities=[2, 4])
        series = result.series()
        assert set(series) == {"lower_bound", "force_directed", "graph_partition"}
        for method_series in series.values():
            assert set(method_series) == {2, 4}

    def test_latencies_above_bound(self):
        result = fig7_scaling.run_single_level(capacities=[4])
        series = result.series()
        for method in ("force_directed", "graph_partition"):
            assert series[method][4] >= series["lower_bound"][4]

    def test_two_level_runs(self):
        result = fig7_scaling.run_two_level(capacities=[4])
        assert result.levels == 2
        assert "graph_partition" in result.series()

    def test_format(self):
        result = fig7_scaling.run_single_level(capacities=[2])
        assert "lower_bound" in fig7_scaling.format_result(result)


class TestFig9Reuse:
    def test_differentials_computed(self):
        result = fig9_reuse.run(capacities=[4], methods=("linear",))
        assert len(result.comparisons) == 1
        comparison = result.comparisons[0]
        assert comparison.volume_reuse > 0
        assert -1.0 <= comparison.differential <= 1.0

    def test_reuse_saves_area_for_linear(self):
        from repro.analysis import evaluate_factory_mapping

        no_reuse = evaluate_factory_mapping("linear", 4, levels=2, reuse=False)
        reuse = evaluate_factory_mapping("linear", 4, levels=2, reuse=True)
        assert reuse.area <= no_reuse.area

    def test_format(self):
        result = fig9_reuse.run(capacities=[4], methods=("linear",))
        assert "linear" in fig9_reuse.format_result(result)


class TestFig9Permutation:
    def test_all_modes_measured(self):
        result = fig9_permutation.run(capacities=[4])
        modes = {m.hop_mode for m in result.measurements}
        assert modes == set(fig9_permutation.HOP_MODES)

    def test_speedup_computable(self):
        result = fig9_permutation.run(capacities=[4])
        assert result.speedup(4) > 0

    def test_braid_counts_match_permutation_edges(self):
        result = fig9_permutation.run(capacities=[4], hop_modes=("none",))
        assert result.measurements[0].braids >= 28  # 14 modules x 2 outputs

    def test_format(self):
        result = fig9_permutation.run(capacities=[4], hop_modes=("none", "random"))
        text = fig9_permutation.format_result(result)
        assert "random" in text


class TestFig10:
    def test_single_level_sweep(self):
        result = fig10_resources.run_single_level(capacities=[2, 4])
        volumes = result.series("volume")
        assert set(volumes) == set(fig10_resources.SINGLE_LEVEL_METHODS)

    def test_two_level_includes_stitching(self):
        result = fig10_resources.run_two_level(capacities=[4])
        assert "hierarchical_stitching" in result.series("volume")

    def test_volume_reduction_ratio(self):
        result = fig10_resources.run_two_level(capacities=[4])
        assert result.volume_reduction(4) > 0

    def test_series_rejects_unknown_field(self):
        result = fig10_resources.run_single_level(capacities=[2])
        with pytest.raises(ValueError):
            result.series("bogus")

    def test_format(self):
        result = fig10_resources.run_single_level(capacities=[2])
        assert "volume" in fig10_resources.format_result(result)


class TestTable1:
    def test_level1_rows(self):
        result = table1_volumes.run(levels=1, capacities=[2, 4])
        assert "random" in result.volumes
        assert "critical" in result.volumes
        assert "hierarchical_stitching" not in result.volumes

    def test_level2_rows(self):
        result = table1_volumes.run(levels=2, capacities=[4])
        assert "hierarchical_stitching" in result.volumes
        assert "random" not in result.volumes

    def test_volumes_above_critical(self):
        result = table1_volumes.run(levels=1, capacities=[4])
        critical = result.volumes["critical"][4]
        for row, by_capacity in result.volumes.items():
            if row == "critical":
                continue
            assert by_capacity[4] >= critical * 0.99

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            table1_volumes.run(levels=3)

    def test_paper_reference(self):
        reference = table1_volumes.paper_reference(2)
        assert reference["hierarchical_stitching"][100] == pytest.approx(5.93e6)

    def test_format(self):
        result = table1_volumes.run(levels=1, capacities=[2])
        assert "procedure" in table1_volumes.format_result(result)


class TestRegistryAndCli:
    def test_registry_contains_every_artifact(self):
        expected = {
            "fig6",
            "fig7a",
            "fig7b",
            "fig9ab",
            "fig9cd",
            "fig10-single",
            "fig10-two",
            "table1-level1",
            "table1-level2",
        }
        assert expected <= set(EXPERIMENTS)

    def test_run_experiment_by_name(self):
        output = run_experiment("fig6", num_mappings=4)
        assert "edge crossings" in output

    def test_parser_list_command(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "fig6" in captured.out

    def test_parser_run_command(self, capsys):
        assert main(["run", "fig6", "--num-mappings", "4"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 6" in captured.out

    def test_parser_capacities_argument(self, capsys):
        assert main(["run", "table1-level1", "--capacities", "2"]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out

    def test_parser_rejects_bad_capacities(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig7a", "--capacities", "two,four"])

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "nonexistent"])
