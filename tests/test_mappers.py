"""Unit tests for the mapping algorithms (linear, random, FD, GP)."""

import pytest

from repro.circuits import critical_path_length
from repro.distillation import BravyiHaahSpec
from repro.graphs import (
    interaction_graph,
    mapping_cost,
    mapping_metrics,
    total_edge_length,
)
from repro.mapping import (
    ForceDirectedConfig,
    assign_dipole_poles,
    force_directed_placement,
    force_directed_refine,
    graph_partition_placement,
    linear_factory_placement,
    linear_module_cells,
    linear_module_shape,
    random_circuit_placement,
    random_placement,
    random_placements,
    take_refine_stats,
)
from repro.mapping.force_directed import _next_stall_counter
from repro.routing import simulate


def assert_places_all_qubits(placement, circuit):
    for qubit in range(circuit.num_qubits):
        assert qubit in placement


class TestLinearMapping:
    def test_module_cells_are_disjoint(self):
        for k in (2, 4, 8, 10):
            cells = linear_module_cells(BravyiHaahSpec(k))
            all_cells = cells["raw"] + cells["anc"] + cells["out"]
            assert len(all_cells) == len(set(all_cells))

    def test_module_cells_fit_block_shape(self):
        for k in (2, 8):
            spec = BravyiHaahSpec(k)
            height, width = linear_module_shape(spec)
            for register_cells in linear_module_cells(spec).values():
                for row, col in register_cells:
                    assert 0 <= row < height
                    assert 0 <= col < width

    def test_module_cells_cover_every_qubit(self):
        spec = BravyiHaahSpec(6)
        cells = linear_module_cells(spec)
        assert len(cells["raw"]) == spec.num_raw_states
        assert len(cells["anc"]) == spec.num_ancillas
        assert len(cells["out"]) == spec.num_outputs

    def test_injection_braids_are_short(self):
        # The hand layout places raw states adjacent to the ancilla they are
        # injected into; edge length of injections must be at most 2.
        spec = BravyiHaahSpec(4)
        cells = linear_module_cells(spec)
        for i in range(1, spec.k + 5):
            raw_cell = cells["raw"][2 * i - 2]
            anc_cell = cells["anc"][i]
            distance = abs(raw_cell[0] - anc_cell[0]) + abs(raw_cell[1] - anc_cell[1])
            assert distance <= 2

    def test_factory_placement_places_everything(self, single_level_k4):
        placement = linear_factory_placement(single_level_k4)
        assert_places_all_qubits(placement, single_level_k4.circuit)

    def test_two_level_placement_places_everything(self, two_level_cap4):
        placement = linear_factory_placement(two_level_cap4)
        assert_places_all_qubits(placement, two_level_cap4.circuit)
        placement.validate()

    def test_reuse_factory_placement_valid(self, two_level_cap4_reuse):
        placement = linear_factory_placement(two_level_cap4_reuse)
        assert_places_all_qubits(placement, two_level_cap4_reuse.circuit)

    def test_single_level_linear_close_to_critical_path(self, single_level_k8):
        placement = linear_factory_placement(single_level_k8)
        latency = simulate(single_level_k8.circuit, placement).latency
        bound = critical_path_length(single_level_k8.circuit)
        assert latency <= bound * 1.5


class TestRandomMapping:
    def test_random_placement_injective(self):
        placement = random_placement(list(range(30)), seed=5)
        assert len(set(placement.positions.values())) == 30

    def test_random_placement_deterministic_per_seed(self):
        first = random_placement(list(range(20)), seed=3)
        second = random_placement(list(range(20)), seed=3)
        assert first.positions == second.positions

    def test_different_seeds_differ(self):
        first = random_placement(list(range(20)), seed=1)
        second = random_placement(list(range(20)), seed=2)
        assert first.positions != second.positions

    def test_random_circuit_placement(self, single_level_k4):
        placement = random_circuit_placement(single_level_k4.circuit, seed=0)
        assert_places_all_qubits(placement, single_level_k4.circuit)

    def test_random_placements_family(self):
        family = random_placements(list(range(10)), count=5, base_seed=7)
        assert len(family) == 5
        assert len({tuple(sorted(p.positions.items())) for p in family}) == 5

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_placement(list(range(10)), width=2, height=2)

    def test_random_worse_than_linear_on_average(self, single_level_k8):
        graph = interaction_graph(single_level_k8.circuit)
        linear = linear_factory_placement(single_level_k8)
        random_lengths = []
        for seed in range(5):
            placement = random_circuit_placement(single_level_k8.circuit, seed=seed)
            random_lengths.append(
                total_edge_length(graph, placement.as_float_positions())
            )
        linear_length = total_edge_length(graph, linear.as_float_positions())
        assert min(random_lengths) > linear_length


class TestGraphPartitionMapping:
    def test_places_every_qubit(self, single_level_k4):
        placement = graph_partition_placement(single_level_k4.circuit)
        assert_places_all_qubits(placement, single_level_k4.circuit)
        placement.validate()

    def test_two_level_placement(self, two_level_cap4):
        placement = graph_partition_placement(two_level_cap4.circuit, seed=1)
        assert_places_all_qubits(placement, two_level_cap4.circuit)

    def test_respects_explicit_dimensions(self, single_level_k4):
        placement = graph_partition_placement(
            single_level_k4.circuit, width=10, height=10
        )
        assert placement.width == 10 and placement.height == 10

    def test_region_too_small_rejected(self, single_level_k4):
        with pytest.raises(ValueError):
            graph_partition_placement(single_level_k4.circuit, width=3, height=3)

    def test_beats_random_on_edge_length(self, single_level_k8):
        graph = interaction_graph(single_level_k8.circuit)
        gp = graph_partition_placement(single_level_k8.circuit, seed=0)
        rand = random_circuit_placement(single_level_k8.circuit, seed=0)
        assert total_edge_length(graph, gp.as_float_positions()) < total_edge_length(
            graph, rand.as_float_positions()
        )

    def test_accepts_prebuilt_graph(self, k4_interaction_graph, single_level_k4):
        placement = graph_partition_placement(
            k4_interaction_graph,
            qubits=list(range(single_level_k4.circuit.num_qubits)),
        )
        assert placement.num_qubits == single_level_k4.circuit.num_qubits


class TestForceDirected:
    def test_dipole_poles_cover_every_vertex(self, k4_interaction_graph):
        poles = assign_dipole_poles(k4_interaction_graph)
        assert set(poles) == set(k4_interaction_graph.nodes())
        assert set(poles.values()) <= {-1, 1}

    def test_refinement_improves_random_start(self, single_level_k8):
        graph = interaction_graph(single_level_k8.circuit)
        initial = random_circuit_placement(single_level_k8.circuit, seed=3, slack=1.5)
        refined = force_directed_refine(
            graph, initial, ForceDirectedConfig(sweeps=25, seed=1)
        )
        before = mapping_metrics(graph, initial.as_float_positions())
        after = mapping_metrics(graph, refined.as_float_positions())
        assert after["edge_crossings"] < before["edge_crossings"]
        assert after["average_edge_length"] < before["average_edge_length"]

    def test_refinement_never_loses_qubits(self, single_level_k4, k4_random_placement):
        graph = interaction_graph(single_level_k4.circuit)
        refined = force_directed_refine(
            graph, k4_random_placement, ForceDirectedConfig(sweeps=10, seed=0)
        )
        assert set(refined.positions) == set(k4_random_placement.positions)
        refined.validate()

    def test_input_placement_not_mutated(self, single_level_k4, k4_random_placement):
        graph = interaction_graph(single_level_k4.circuit)
        snapshot = dict(k4_random_placement.positions)
        force_directed_refine(
            graph, k4_random_placement, ForceDirectedConfig(sweeps=5, seed=0)
        )
        assert k4_random_placement.positions == snapshot

    def test_force_directed_placement_from_scratch(self, single_level_k4):
        placement = force_directed_placement(
            single_level_k4.circuit, config=ForceDirectedConfig(sweeps=5, seed=0)
        )
        assert placement.num_qubits == single_level_k4.circuit.num_qubits

    def test_ablation_switches_accepted(self, single_level_k4, k4_random_placement):
        graph = interaction_graph(single_level_k4.circuit)
        config = ForceDirectedConfig(
            sweeps=5,
            use_dipole=False,
            use_edge_repulsion=False,
            use_communities=False,
            seed=0,
        )
        refined = force_directed_refine(graph, k4_random_placement, config)
        refined.validate()

    def test_deterministic_given_seed(self, single_level_k4, k4_random_placement):
        graph = interaction_graph(single_level_k4.circuit)
        config = ForceDirectedConfig(sweeps=8, seed=42)
        first = force_directed_refine(graph, k4_random_placement, config)
        second = force_directed_refine(graph, k4_random_placement, config)
        assert first.positions == second.positions


class TestExactCostRefinement:
    """The annealer optimizes the exact Fig. 6 cost at every graph size."""

    def test_returned_placement_is_exact_cost_argmin(self, single_level_k8):
        graph = interaction_graph(single_level_k8.circuit)
        initial = random_circuit_placement(single_level_k8.circuit, seed=2, slack=1.5)
        config = ForceDirectedConfig(sweeps=10, seed=0)
        take_refine_stats()
        refined = force_directed_refine(graph, initial, config)
        stats = take_refine_stats()[-1]
        refined_cost = mapping_cost(
            graph,
            refined.as_float_positions(),
            crossing_weight=config.cost_crossing_weight,
        )
        # The tracker's incremental cost equals a from-scratch recompute...
        assert refined_cost == pytest.approx(stats.best_cost, rel=1e-9)
        # ...and the returned placement is the argmin over the initial
        # placement and every sweep-end placement.
        assert refined_cost == pytest.approx(
            min([stats.initial_cost] + stats.sweep_costs), rel=1e-9
        )

    def test_factory_scale_graph_uses_exact_cost(self, two_level_cap16):
        # 1032 edges — far above the deleted 600-edge fallback threshold.
        # The returned placement must still be the exact-cost argmin over
        # sweeps, which only holds if the exact combined metric cost (not
        # the old weighted-length surrogate) drives the sweep bookkeeping.
        graph = interaction_graph(two_level_cap16.circuit)
        assert graph.number_of_edges() > 600
        initial = linear_factory_placement(two_level_cap16)
        config = ForceDirectedConfig(sweeps=3, seed=1, use_communities=False)
        take_refine_stats()
        refined = force_directed_refine(graph, initial, config)
        stats = take_refine_stats()[-1]
        refined_cost = mapping_cost(
            graph,
            refined.as_float_positions(),
            crossing_weight=config.cost_crossing_weight,
        )
        assert refined_cost == pytest.approx(stats.best_cost, rel=1e-9)
        assert refined_cost == pytest.approx(
            min([stats.initial_cost] + stats.sweep_costs), rel=1e-9
        )
        assert refined_cost <= stats.initial_cost

    def test_refine_is_byte_identical_across_tracker_engines(
        self, single_level_k8, monkeypatch
    ):
        """Every tracker engine drives the annealer down the same trajectory.

        The RNG stream consumes one draw per Boltzmann test, so even a
        last-ulp delta difference between engines would fork the move
        sequence; identical positions and costs pin the bit-parity
        contract end to end, not just per-call.
        """
        from repro.graphs import tracker_engines

        graph = interaction_graph(single_level_k8.circuit)
        initial = random_circuit_placement(single_level_k8.circuit, seed=7, slack=1.5)
        config = ForceDirectedConfig(sweeps=6, seed=4)
        outcomes = {}
        for engine in tracker_engines():
            monkeypatch.setenv("REPRO_METRICS_ENGINE", engine)
            take_refine_stats()
            refined = force_directed_refine(graph, initial, config)
            stats = take_refine_stats()[-1]
            outcomes[engine] = (
                refined.positions,
                stats.best_cost,
                stats.sweep_costs,
                stats.proposed_moves,
                stats.accepted_moves,
            )
        monkeypatch.delenv("REPRO_METRICS_ENGINE")
        expected = outcomes["scalar"]
        for engine, outcome in outcomes.items():
            assert outcome == expected, f"engine={engine!r} forked the trajectory"

    def test_refine_stats_counters_are_consistent(
        self, single_level_k4, k4_random_placement
    ):
        graph = interaction_graph(single_level_k4.circuit)
        config = ForceDirectedConfig(sweeps=6, seed=3)
        take_refine_stats()
        force_directed_refine(graph, k4_random_placement, config)
        stats = take_refine_stats()[-1]
        assert stats.sweeps == 6
        assert len(stats.sweep_costs) == 6
        assert (
            0 <= stats.improving_moves <= stats.accepted_moves <= stats.proposed_moves
        )
        assert stats.best_cost <= stats.initial_cost

    def test_pending_refine_stats_are_bounded(
        self, single_level_k4, k4_random_placement
    ):
        # A long-lived process that never drains the channel must not leak.
        from repro.mapping import force_directed as fd_module

        graph = interaction_graph(single_level_k4.circuit)
        config = ForceDirectedConfig(sweeps=1, seed=0, use_communities=False)
        take_refine_stats()
        for _ in range(fd_module._MAX_PENDING_REFINE_STATS + 5):
            force_directed_refine(graph, k4_random_placement, config)
        assert (
            len(fd_module._PENDING_REFINE_STATS)
            == fd_module._MAX_PENDING_REFINE_STATS
        )
        assert len(take_refine_stats()) == fd_module._MAX_PENDING_REFINE_STATS


class TestStallCounter:
    """Sweeps with improving local moves don't count toward community patience."""

    def test_new_best_resets(self):
        assert _next_stall_counter(4, new_best=True, improved_any=True) == 0
        assert _next_stall_counter(4, new_best=True, improved_any=False) == 0

    def test_improving_sweep_holds(self):
        assert _next_stall_counter(4, new_best=False, improved_any=True) == 4

    def test_fruitless_sweep_advances(self):
        assert _next_stall_counter(4, new_best=False, improved_any=False) == 5

    def test_stalled_sweeps_gate_community_moves(
        self, single_level_k4, k4_random_placement
    ):
        # With infinite patience no community move may ever fire, however
        # many sweeps stall.
        graph = interaction_graph(single_level_k4.circuit)
        config = ForceDirectedConfig(sweeps=12, seed=0, community_patience=10**6)
        take_refine_stats()
        force_directed_refine(graph, k4_random_placement, config)
        stats = take_refine_stats()[-1]
        assert stats.community_moves == 0
