"""Unit tests for resource accounting (repro.distillation.resources)."""

import pytest

from repro.distillation import (
    ErrorBudget,
    FactorySpec,
    balanced_code_distances,
    factory_resources,
    logical_area,
    round_module_counts,
    space_time_volume,
)


class TestBalancedInvestment:
    def test_distances_increase_with_round(self):
        spec = FactorySpec(k=4, levels=2)
        distances = balanced_code_distances(spec)
        assert len(distances) == 2
        assert distances[1] >= distances[0]

    def test_distances_are_odd(self):
        spec = FactorySpec(k=2, levels=3)
        assert all(d % 2 == 1 for d in balanced_code_distances(spec))

    def test_lower_injection_error_needs_larger_distance(self):
        spec = FactorySpec(k=4, levels=1)
        noisy = balanced_code_distances(spec, ErrorBudget(injection_error=1e-2))
        clean = balanced_code_distances(spec, ErrorBudget(injection_error=1e-3))
        assert clean[0] >= noisy[0]


class TestFactoryResources:
    def test_round_module_counts(self):
        spec = FactorySpec(k=4, levels=2)
        assert round_module_counts(spec) == [20, 4]

    def test_logical_qubits_per_round(self):
        spec = FactorySpec(k=4, levels=2)
        resources = factory_resources(spec)
        assert resources.rounds[0].logical_qubits == 20 * 33
        assert resources.rounds[1].logical_qubits == 4 * 33

    def test_physical_qubits_scale_with_distance_squared(self):
        spec = FactorySpec(k=4, levels=2)
        resources = factory_resources(spec)
        for round_resources in resources.rounds:
            assert round_resources.physical_qubits == (
                round_resources.logical_qubits * round_resources.code_distance**2
            )

    def test_peak_footprints(self):
        spec = FactorySpec(k=4, levels=2)
        resources = factory_resources(spec)
        assert resources.max_logical_qubits == max(
            r.logical_qubits for r in resources.rounds
        )
        assert resources.max_physical_qubits == max(
            r.physical_qubits for r in resources.rounds
        )

    def test_final_output_error_improves_on_injection(self):
        budget = ErrorBudget(injection_error=1e-2)
        resources = factory_resources(FactorySpec(k=4, levels=2), budget)
        assert resources.final_output_error < budget.injection_error


class TestVolumeHelpers:
    def test_space_time_volume(self):
        assert space_time_volume(10, 20) == 200
        assert space_time_volume(0, 5) == 0

    def test_space_time_volume_rejects_negative(self):
        with pytest.raises(ValueError):
            space_time_volume(-1, 5)

    def test_logical_area_no_reuse_counts_all_qubits(self, two_level_cap4):
        assert logical_area(two_level_cap4) == two_level_cap4.num_qubits

    def test_logical_area_reuse_is_peak_round(self, two_level_cap4_reuse):
        area = logical_area(two_level_cap4_reuse)
        assert area <= two_level_cap4_reuse.num_qubits
        assert area >= len(two_level_cap4_reuse.round_qubits(1))
