"""Unit tests for the Bravyi-Haah module generator (repro.distillation.bravyi_haah)."""

import pytest

from repro.circuits import GateKind
from repro.distillation import (
    BravyiHaahSpec,
    build_bravyi_haah_circuit,
    module_gate_count,
    raw_state_usage,
)


class TestSpec:
    def test_counts_match_protocol(self):
        spec = BravyiHaahSpec(8)
        assert spec.num_raw_states == 32
        assert spec.num_ancillas == 13
        assert spec.num_outputs == 8
        assert spec.total_qubits == 53
        assert spec.num_module_qubits == 21

    @pytest.mark.parametrize("k", [1, 2, 4, 6, 8, 10, 24])
    def test_total_qubits_formula(self, k):
        spec = BravyiHaahSpec(k)
        assert spec.total_qubits == 5 * k + 13

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BravyiHaahSpec(0)


class TestCircuitGeneration:
    @pytest.mark.parametrize("k", [1, 2, 4, 8, 12])
    def test_gate_count_matches_closed_form(self, k):
        circuit = build_bravyi_haah_circuit(k)
        assert len(circuit) == module_gate_count(k)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_every_raw_state_consumed_exactly_once(self, k):
        circuit = build_bravyi_haah_circuit(k)
        assert raw_state_usage(circuit) == tuple([1] * (3 * k + 8))

    def test_injection_count_equals_raw_states(self):
        circuit = build_bravyi_haah_circuit(8)
        counts = circuit.gate_counts()
        injections = counts[GateKind.INJECT_T] + counts[GateKind.INJECT_TDAG]
        assert injections == 3 * 8 + 8

    def test_all_ancillas_measured(self):
        circuit = build_bravyi_haah_circuit(4)
        anc = circuit.register("anc")
        measured = {
            gate.qubits[0]
            for gate in circuit
            if gate.kind is GateKind.MEAS_X
        }
        assert measured == set(anc.qubits)

    def test_outputs_never_measured(self):
        circuit = build_bravyi_haah_circuit(4)
        out = set(circuit.register("out").qubits)
        for gate in circuit:
            if gate.kind.is_measurement:
                assert not (set(gate.qubits) & out)

    def test_two_cxx_fanouts(self):
        circuit = build_bravyi_haah_circuit(6)
        cxx_gates = [g for g in circuit if g.kind is GateKind.CXX]
        assert len(cxx_gates) == 2
        # First touches k targets, second k+4 targets; both controlled by anc[0].
        anc0 = circuit.register("anc")[0]
        assert all(g.control == anc0 for g in cxx_gates)
        assert {len(g.targets) for g in cxx_gates} == {6, 10}

    def test_hadamard_count(self):
        k = 5
        circuit = build_bravyi_haah_circuit(k)
        assert circuit.count(GateKind.H) == 3 + k

    def test_register_sizes(self):
        circuit = build_bravyi_haah_circuit(8)
        assert circuit.register("raw_states").size == 32
        assert circuit.register("out").size == 8
        assert circuit.register("anc").size == 13
        assert circuit.num_qubits == 53

    def test_every_output_interacts_with_tail_ancilla(self):
        k = 4
        circuit = build_bravyi_haah_circuit(k)
        out = circuit.register("out")
        anc = circuit.register("anc")
        pairs = set()
        for gate in circuit:
            if gate.kind is GateKind.CNOT:
                pairs.add(gate.qubits)
        for i in range(k):
            assert (out[i], anc[5 + i]) in pairs

    def test_circuit_name_defaults_to_capacity(self):
        assert build_bravyi_haah_circuit(3).name == "bravyi_haah_k3"

    def test_gates_are_tagged_with_module_id(self):
        circuit = build_bravyi_haah_circuit(2)
        assert all(gate.tag == "r1.m0" for gate in circuit)
