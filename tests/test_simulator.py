"""Unit tests for the cycle-accurate braid simulator (repro.routing.simulator)."""

import pytest

from repro.circuits import (
    barrier,
    cnot,
    critical_path_length,
    cxx,
    h,
    inject_t,
    meas_x,
)
from repro.circuits.gates import DEFAULT_DURATIONS, GateKind
from repro.mapping import Placement, linear_factory_placement, random_circuit_placement
from repro.routing import (
    BraidRouter,
    RoutingDeadlockError,
    SimulatorConfig,
    simulate,
    simulate_latency,
    simulate_reference,
)


def line_placement(num_qubits, width=None):
    width = width or num_qubits
    return Placement(
        width=width,
        height=(num_qubits + width - 1) // width,
        positions={q: (q // width, q % width) for q in range(num_qubits)},
    )


class TestBasicSemantics:
    def test_empty_circuit(self):
        result = simulate([], line_placement(1))
        assert result.latency == 0
        assert result.volume == 0

    def test_single_gate_latency_is_duration(self):
        latency = simulate_latency([cnot(0, 1)], line_placement(2))
        assert latency == DEFAULT_DURATIONS[GateKind.CNOT]

    def test_dependent_gates_serialise(self):
        gates = [cnot(0, 1), cnot(1, 2)]
        latency = simulate_latency(gates, line_placement(3))
        assert latency == 2 * DEFAULT_DURATIONS[GateKind.CNOT]

    def test_independent_distant_gates_run_in_parallel(self):
        placement = Placement(
            width=8,
            height=3,
            positions={0: (0, 0), 1: (0, 7), 2: (2, 0), 3: (2, 7)},
        )
        latency = simulate_latency([cnot(0, 1), cnot(2, 3)], placement)
        assert latency == DEFAULT_DURATIONS[GateKind.CNOT]

    def test_latency_never_below_critical_path(self, single_level_k4):
        placement = random_circuit_placement(single_level_k4.circuit, seed=2)
        latency = simulate_latency(single_level_k4.circuit, placement)
        assert latency >= critical_path_length(single_level_k4.circuit)

    def test_unplaced_qubit_rejected(self):
        with pytest.raises(ValueError):
            simulate([cnot(0, 5)], line_placement(2))

    def test_custom_durations(self):
        config = SimulatorConfig(durations={**DEFAULT_DURATIONS, GateKind.CNOT: 9})
        assert simulate_latency([cnot(0, 1)], line_placement(2), config) == 9

    def test_max_cycles_guard(self):
        config = SimulatorConfig(max_cycles=0)
        gates = [cnot(0, 1), cnot(1, 2)]
        with pytest.raises(RuntimeError):
            simulate(gates, line_placement(3), config)


class TestCongestion:
    def crossing_gates_and_placement(self):
        # Two braids in the same tile row with interleaved endpoints: their
        # preferred corridors (the channel row above the tiles) overlap, so
        # with a single route candidate one of them must stall.
        placement = Placement(
            width=6,
            height=1,
            positions={0: (0, 0), 1: (0, 3), 2: (0, 1), 3: (0, 4)},
        )
        return [cnot(0, 1), cnot(2, 3)], placement

    def test_conflicting_braids_stall(self):
        gates, placement = self.crossing_gates_and_placement()
        config = SimulatorConfig(max_candidates=1)
        result = simulate(gates, placement, config)
        assert result.latency > DEFAULT_DURATIONS[GateKind.CNOT]
        assert result.stall_events > 0

    def test_more_candidates_reduce_stalls(self):
        gates, placement = self.crossing_gates_and_placement()
        strict = simulate(gates, placement, SimulatorConfig(max_candidates=1))
        loose = simulate(gates, placement, SimulatorConfig(max_candidates=8))
        assert loose.latency <= strict.latency

    def test_stall_cycles_accounting(self):
        gates, placement = self.crossing_gates_and_placement()
        result = simulate(gates, placement, SimulatorConfig(max_candidates=1))
        assert (
            result.stall_cycles
            >= result.latency - 2 * DEFAULT_DURATIONS[GateKind.CNOT]
        )

    def test_random_mapping_never_faster_than_linear(self, single_level_k8):
        linear = linear_factory_placement(single_level_k8)
        random_place = random_circuit_placement(single_level_k8.circuit, seed=1)
        linear_latency = simulate_latency(single_level_k8.circuit, linear)
        random_latency = simulate_latency(single_level_k8.circuit, random_place)
        assert random_latency >= linear_latency


class TestGateKinds:
    def test_single_qubit_gates_do_not_consume_channels(self):
        gates = [h(0), h(1), h(2)]
        result = simulate(gates, line_placement(3))
        assert result.braided_gates == 0
        assert result.latency == DEFAULT_DURATIONS[GateKind.H]

    def test_cxx_counts_as_one_braid(self):
        gates = [cxx(0, [1, 2, 3])]
        result = simulate(gates, line_placement(4))
        assert result.braided_gates == 1
        assert result.max_concurrent_braids == 1

    def test_barrier_synchronises(self):
        gates = [cnot(0, 1), barrier(), cnot(2, 3)]
        placement = Placement(
            width=8,
            height=3,
            positions={0: (0, 0), 1: (0, 7), 2: (2, 0), 3: (2, 7)},
        )
        latency = simulate_latency(gates, placement)
        without_barrier = simulate_latency([cnot(0, 1), cnot(2, 3)], placement)
        assert latency > without_barrier

    def test_measurement_and_injection(self):
        gates = [inject_t(0, 1), meas_x(1)]
        latency = simulate_latency(gates, line_placement(2))
        expected = (
            DEFAULT_DURATIONS[GateKind.INJECT_T] + DEFAULT_DURATIONS[GateKind.MEAS_X]
        )
        assert latency == expected

    def test_hop_lengthens_braid_footprint(self):
        placement = Placement(
            width=6, height=6, positions={0: (0, 0), 1: (0, 5)}
        )
        direct = simulate([cnot(0, 1)], placement)
        via_hop = simulate(
            [cnot(0, 1)], placement, SimulatorConfig(hops={0: (5, 2)})
        )
        assert via_hop.total_braid_cells > direct.total_braid_cells


class TestStallCounters:
    """Pinned reference-engine stall accounting (see SimulationResult docs).

    ``stall_events`` is the legacy retry count (one per stalled gate per
    completion event), ``distinct_stalls`` counts gates that ever stalled,
    ``wakeups`` counts parked-gate retries triggered by a freed blocker.
    The literals below were produced by ``simulate_reference`` and pin the
    semantics for both engines.
    """

    def crossing_case(self):
        placement = Placement(
            width=6,
            height=1,
            positions={0: (0, 0), 1: (0, 3), 2: (0, 1), 3: (0, 4)},
        )
        return [cnot(0, 1), cnot(2, 3)], placement, SimulatorConfig(max_candidates=1)

    def test_crossing_braids_pinned_counters(self):
        gates, placement, config = self.crossing_case()
        for engine in (simulate, simulate_reference):
            result = engine(gates, placement, config)
            assert result.stall_events == 1
            assert result.distinct_stalls == 1
            assert result.wakeups == 1
            assert result.stall_cycles == 2

    def test_factory_random_placement_pinned_counters(self, single_level_k8):
        placement = random_circuit_placement(single_level_k8.circuit, seed=1)
        config = SimulatorConfig(max_candidates=2)
        for engine in (simulate, simulate_reference):
            result = engine(single_level_k8.circuit, placement, config)
            assert result.stall_events == 63
            assert result.distinct_stalls == 20
            assert result.wakeups == 49
            assert result.stall_cycles == 126
            assert result.latency == 74

    def test_counter_relations(self, single_level_k8):
        placement = random_circuit_placement(single_level_k8.circuit, seed=2)
        result = simulate(single_level_k8.circuit, placement)
        # Every stalled gate stalls at least once; every wakeup retries a
        # previously stalled gate, and a gate is woken at most once per
        # completion event, so wakeups never exceed the legacy retry count.
        assert 0 < result.distinct_stalls <= result.stall_events
        assert result.distinct_stalls <= result.wakeups <= result.stall_events

    def test_unstalled_run_reports_zero(self):
        placement = Placement(
            width=8,
            height=3,
            positions={0: (0, 0), 1: (0, 7), 2: (2, 0), 3: (2, 7)},
        )
        result = simulate([cnot(0, 1), cnot(2, 3)], placement)
        assert result.stall_events == 0
        assert result.distinct_stalls == 0
        assert result.wakeups == 0

    def test_empty_circuit_counters(self):
        result = simulate([], line_placement(1))
        assert result.stall_events == 0
        assert result.distinct_stalls == 0
        assert result.wakeups == 0


class TestRoutingDeadlock:
    """The deadlock path: ready braids, idle mesh, no route.

    The real router always finds a route on an idle mesh (rectilinear
    candidates exist for every pair), so the error is exercised with a
    router that can never route — both engines must diagnose the same
    deadlock rather than spinning.
    """

    #: The wakeup engine handles plain pairs inline; routing through the
    #: (monkeypatched) router requires a config whose gates take the router
    #: path, which ``allow_detour`` guarantees.
    ROUTER_PATH_CONFIG = SimulatorConfig(allow_detour=True)

    def _break_router(self, monkeypatch):
        monkeypatch.setattr(
            BraidRouter, "route_pair", lambda self, a, b, locked, hop=None: None
        )
        monkeypatch.setattr(
            BraidRouter,
            "route_pair_masked",
            lambda self, a, b, locked_mask, hop=None: (False, 0),
        )

    def test_wakeup_engine_raises(self, monkeypatch):
        self._break_router(monkeypatch)
        with pytest.raises(RoutingDeadlockError, match="1 gates cannot be routed"):
            simulate([cnot(0, 1)], line_placement(2), self.ROUTER_PATH_CONFIG)

    def test_reference_engine_raises(self, monkeypatch):
        self._break_router(monkeypatch)
        with pytest.raises(RoutingDeadlockError, match="1 gates cannot be routed"):
            simulate_reference(
                [cnot(0, 1)], line_placement(2), track_wakeups=False
            )

    def test_deadlock_waits_for_inflight_braids(self, monkeypatch):
        # With a braid already in flight the stalled gate is not a deadlock
        # yet; the error fires once the mesh is idle and it still cannot
        # route.
        calls = {"n": 0}

        def flaky_pair(self, a, b, locked, hop=None):
            calls["n"] += 1
            if calls["n"] == 1:
                return original(self, a, b, locked, hop=hop)
            return None

        original = BraidRouter.route_pair
        original_masked = BraidRouter.route_pair_masked
        monkeypatch.setattr(BraidRouter, "route_pair", flaky_pair)
        with pytest.raises(RoutingDeadlockError):
            simulate_reference(
                [cnot(0, 1), cnot(2, 3)], line_placement(4), track_wakeups=False
            )

        calls["n"] = 0

        def flaky_masked(self, a, b, locked_mask, hop=None):
            calls["n"] += 1
            if calls["n"] == 1:
                return original_masked(self, a, b, locked_mask, hop=hop)
            return False, 0

        monkeypatch.setattr(BraidRouter, "route_pair_masked", flaky_masked)
        with pytest.raises(RoutingDeadlockError):
            simulate(
                [cnot(0, 1), cnot(2, 3)],
                line_placement(4),
                self.ROUTER_PATH_CONFIG,
            )


class TestResultFields:
    def test_gate_times_recorded(self, single_level_k4, k4_linear_placement):
        result = simulate(single_level_k4.circuit, k4_linear_placement)
        assert len(result.gate_start) == len(single_level_k4.circuit)
        assert all(start >= 0 for start in result.gate_start)
        assert all(
            end > start for start, end in zip(result.gate_start, result.gate_end)
        )
        assert result.latency == max(result.gate_end)

    def test_volume_is_area_times_latency(self, single_level_k4, k4_linear_placement):
        result = simulate(single_level_k4.circuit, k4_linear_placement)
        assert result.volume == result.area * result.latency

    def test_average_braid_length_positive(self, single_level_k4, k4_linear_placement):
        result = simulate(single_level_k4.circuit, k4_linear_placement)
        assert result.average_braid_length > 0

    def test_deterministic(self, single_level_k4, k4_random_placement):
        first = simulate(single_level_k4.circuit, k4_random_placement)
        second = simulate(single_level_k4.circuit, k4_random_placement)
        assert first.latency == second.latency
        assert first.gate_start == second.gate_start

    def test_gate_start_respects_dependencies(
        self, single_level_k4, k4_linear_placement
    ):
        from repro.circuits import build_dependency_dag

        result = simulate(single_level_k4.circuit, k4_linear_placement)
        dag = build_dependency_dag(single_level_k4.circuit.gates)
        for index, preds in enumerate(dag.predecessors):
            for pred in preds:
                assert result.gate_start[index] >= result.gate_end[pred]
