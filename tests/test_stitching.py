"""Unit tests for the hierarchical stitching mapper (repro.mapping.stitching)."""

import pytest

from repro.distillation import FactorySpec, ReusePolicy, validate_port_map
from repro.mapping import (
    StitchingConfig,
    hierarchical_stitching,
    optimize_permutation_hops,
    permutation_gate_indices,
    stitched_mapping_for_factory,
)
from repro.routing import SimulatorConfig, simulate


@pytest.fixture(scope="module")
def stitched_cap4():
    return hierarchical_stitching(
        FactorySpec.from_capacity(4, 2), config=StitchingConfig(seed=0)
    )


class TestStitchedMapping:
    def test_every_qubit_placed(self, stitched_cap4):
        circuit = stitched_cap4.factory.circuit
        for qubit in range(circuit.num_qubits):
            assert qubit in stitched_cap4.placement
        stitched_cap4.placement.validate()

    def test_port_maps_are_valid(self, stitched_cap4):
        spec = stitched_cap4.factory.spec
        assert len(stitched_cap4.port_maps) == spec.levels - 1
        validate_port_map(spec, 1, stitched_cap4.port_maps[0])

    def test_hops_reference_permutation_gates(self, stitched_cap4):
        permutation = set(permutation_gate_indices(stitched_cap4.factory))
        assert set(stitched_cap4.hops) <= permutation
        assert stitched_cap4.hops  # annealed midpoint mode produces hops

    def test_hops_are_within_grid(self, stitched_cap4):
        placement = stitched_cap4.placement
        for hop in stitched_cap4.hops.values():
            assert 0 <= hop[0] < placement.height
            assert 0 <= hop[1] < placement.width

    def test_simulation_runs_with_hops(self, stitched_cap4):
        config = SimulatorConfig(hops=stitched_cap4.hops)
        result = simulate(
            stitched_cap4.factory.circuit, stitched_cap4.placement, config
        )
        assert result.latency > 0

    def test_later_round_modules_are_central(self, stitched_cap4):
        # The round-2 modules should sit closer to the grid centre than the
        # average round-1 module (the Fig. 8 arrangement).
        placement = stitched_cap4.placement
        factory = stitched_cap4.factory
        centre = ((placement.height - 1) / 2.0, (placement.width - 1) / 2.0)

        def mean_distance(modules):
            distances = []
            for module in modules:
                for qubit in module.anc_qubits:
                    row, col = placement.positions[qubit]
                    distances.append(abs(row - centre[0]) + abs(col - centre[1]))
            return sum(distances) / len(distances)

        assert mean_distance(factory.rounds[1]) < mean_distance(factory.rounds[0])


class TestPermutationGateIndices:
    def test_single_level_has_no_permutation_gates(self, single_level_k4):
        assert permutation_gate_indices(single_level_k4) == []

    def test_count_matches_permutation_edges(self, two_level_cap4):
        # Each forwarded output is injected (T then T-dagger is not applied to
        # forwarded outputs; each is consumed by exactly one injection pair
        # slot), so there is at least one permutation braid per edge.
        indices = permutation_gate_indices(two_level_cap4)
        assert len(indices) >= len(two_level_cap4.permutation_edges)

    def test_indices_point_at_injections(self, two_level_cap4):
        from repro.circuits import GateKind

        for index in permutation_gate_indices(two_level_cap4):
            assert two_level_cap4.circuit[index].kind in (
                GateKind.INJECT_T,
                GateKind.INJECT_TDAG,
            )


class TestHopModes:
    @pytest.mark.parametrize(
        "mode", ["none", "random", "annealed_random", "annealed_midpoint"]
    )
    def test_hop_modes_produce_valid_hops(self, two_level_cap4, mode):
        from repro.mapping import linear_factory_placement

        placement = linear_factory_placement(two_level_cap4)
        hops = optimize_permutation_hops(
            two_level_cap4,
            placement,
            StitchingConfig(hop_mode=mode, hop_sweeps=1, seed=0),
        )
        if mode == "none":
            assert hops == {}
        else:
            assert hops
            for hop in hops.values():
                assert placement.in_bounds(hop)

    def test_unknown_module_mapper_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_stitching(
                FactorySpec.from_capacity(4, 2),
                config=StitchingConfig(module_mapper="bogus"),
            )


class TestStitchingVariants:
    def test_graph_partition_module_mapper(self):
        stitched = hierarchical_stitching(
            FactorySpec.from_capacity(4, 2),
            config=StitchingConfig(
                module_mapper="graph_partition", hop_sweeps=1, seed=0
            ),
        )
        circuit = stitched.factory.circuit
        for qubit in range(circuit.num_qubits):
            assert qubit in stitched.placement

    def test_reuse_policy_supported(self):
        stitched = hierarchical_stitching(
            FactorySpec.from_capacity(4, 2),
            reuse_policy=ReusePolicy.REUSE,
            config=StitchingConfig(hop_sweeps=1, seed=0),
        )
        circuit = stitched.factory.circuit
        for qubit in range(circuit.num_qubits):
            assert qubit in stitched.placement

    def test_stitched_mapping_for_existing_factory(self, two_level_cap4):
        stitched = stitched_mapping_for_factory(
            two_level_cap4, StitchingConfig(hop_sweeps=1, seed=0)
        )
        assert stitched.factory is two_level_cap4
        for qubit in range(two_level_cap4.circuit.num_qubits):
            assert qubit in stitched.placement

    def test_port_reassignment_can_be_disabled(self):
        stitched = hierarchical_stitching(
            FactorySpec.from_capacity(4, 2),
            config=StitchingConfig(reassign_ports=False, hop_sweeps=1, seed=0),
        )
        assert stitched.port_maps == []

    def test_single_level_stitching_works(self):
        stitched = hierarchical_stitching(
            FactorySpec(k=4, levels=1), config=StitchingConfig(seed=0)
        )
        assert stitched.hops == {}
        assert stitched.placement.num_qubits == stitched.factory.circuit.num_qubits
