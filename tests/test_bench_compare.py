"""Tests for the bench-record comparison tool and its CLI gate.

The contract: same-provenance records gate hard on wall-time slowdowns
beyond the threshold, cross-machine / cross-scale records are advisory
(full diff, exit 0) unless ``--strict``, and workload drifts are annotated
field by field.
"""

from __future__ import annotations

import json

import pytest

from repro.api.benchcompare import (
    BenchRecordError,
    compare_bench_records,
    load_bench_record,
    record_python_version,
)
from repro.cli import main


def bench_record(**overrides):
    """A minimal, valid bench record; keyword overrides patch the header."""
    record = {
        "schema": "repro-msfu-bench/v1",
        "created_utc": "2026-07-28T12:00:00Z",
        "smoke": True,
        "requested_workers": 1,
        "git_sha": "a" * 40,
        "cpu_count": 4,
        "python": "3.12.1",
        "python_version": "3.12.1",
        "platform": "Linux-test",
        "experiments": [
            {
                "experiment": "fig7a",
                "params": {},
                "workers": 1,
                "wall_seconds": 2.0,
                "sim_cycles": 1000,
                "stall_cycles": 500,
                "evaluations": 10,
            },
            {
                "experiment": "table1-level1",
                "params": {},
                "workers": 1,
                "wall_seconds": 1.0,
                "sim_cycles": 400,
                "stall_cycles": 100,
                "evaluations": 5,
            },
        ],
        "total_wall_seconds": 3.0,
    }
    record.update(overrides)
    return record


def scaled(record, factor):
    """A copy of ``record`` with every wall time multiplied by ``factor``."""
    copy = json.loads(json.dumps(record))
    for entry in copy["experiments"]:
        entry["wall_seconds"] = entry["wall_seconds"] * factor
    copy["total_wall_seconds"] = copy["total_wall_seconds"] * factor
    return copy


class TestCompareVerdicts:
    def test_identical_records_pass(self):
        old = bench_record()
        comparison = compare_bench_records(old, scaled(old, 1.0), max_slowdown=1.5)
        assert comparison.comparable
        assert comparison.regressions == []
        assert comparison.exit_code() == 0

    def test_slowdown_beyond_threshold_is_gating_regression(self):
        old = bench_record()
        comparison = compare_bench_records(old, scaled(old, 2.0), max_slowdown=1.5)
        assert comparison.comparable
        # The TOTAL row is tracked separately so regression counts do not
        # inflate: 2 regressed experiments, not 3.
        names = {delta.experiment for delta in comparison.regressions}
        assert names == {"fig7a", "table1-level1"}
        assert comparison.total_regressed
        assert comparison.exit_code() == 1

    def test_total_only_creep_still_gates(self):
        """Per-experiment creep under the noise floor can still regress the run."""
        old = bench_record()
        old["experiments"][0]["wall_seconds"] = 0.04
        old["experiments"][1]["wall_seconds"] = 0.02
        old["total_wall_seconds"] = 0.06
        new = scaled(old, 1.0)
        # Each row grows 30ms (under the 50ms floor: no row regression)...
        new["experiments"][0]["wall_seconds"] = 0.07
        new["experiments"][1]["wall_seconds"] = 0.05
        new["total_wall_seconds"] = 0.12
        comparison = compare_bench_records(old, new, max_slowdown=1.5)
        assert comparison.regressions == []
        # ...but the run as a whole doubled, 60ms over: TOTAL gates alone.
        assert comparison.total_regressed
        assert comparison.exit_code() == 1
        assert "total wall time regressed" in comparison.format_table()

    def test_slowdown_within_threshold_passes(self):
        old = bench_record()
        comparison = compare_bench_records(old, scaled(old, 1.4), max_slowdown=1.5)
        assert comparison.exit_code() == 0

    def test_speedup_is_never_a_regression(self):
        old = bench_record()
        comparison = compare_bench_records(old, scaled(old, 0.1), max_slowdown=1.5)
        assert comparison.regressions == []

    def test_cross_machine_regression_is_advisory(self):
        old = bench_record()
        new = scaled(old, 10.0)
        new["platform"] = "Darwin-other-machine"
        comparison = compare_bench_records(old, new, max_slowdown=1.5)
        assert not comparison.comparable
        assert any("platform" in reason for reason in comparison.advisory_reasons)
        assert comparison.regressions  # reported...
        assert comparison.exit_code() == 0  # ...but not gating
        assert comparison.exit_code(strict=True) == 1  # unless forced

    def test_cpu_count_python_and_smoke_affect_comparability(self):
        old = bench_record()
        for key, value in (
            ("cpu_count", 1),
            ("python_version", "3.9.0"),
            ("smoke", False),
        ):
            new = scaled(old, 1.0)
            new[key] = value
            if key == "python_version":
                new["python"] = value
            comparison = compare_bench_records(old, new)
            assert not comparison.comparable, key

    def test_git_sha_difference_does_not_affect_comparability(self):
        old = bench_record()
        new = scaled(old, 1.0)
        new["git_sha"] = "b" * 40
        assert compare_bench_records(old, new).comparable

    def test_legacy_python_key_is_understood(self):
        old = bench_record()
        del old["python_version"]  # pre-provenance records only had "python"
        assert record_python_version(old) == "3.12.1"
        comparison = compare_bench_records(old, bench_record())
        assert comparison.comparable


class TestCompareDiffDetails:
    def test_workload_drift_is_annotated(self):
        old = bench_record()
        new = scaled(old, 1.0)
        new["experiments"][0]["sim_cycles"] = 2222
        new["experiments"][0]["params"] = {"capacities": [2]}
        comparison = compare_bench_records(old, new)
        [fig7a] = [d for d in comparison.deltas if d.experiment == "fig7a"]
        assert any("sim_cycles 1000 -> 2222" in note for note in fig7a.notes)
        assert any("params differ" in note for note in fig7a.notes)

    def test_missing_experiment_gates_like_a_regression(self):
        """A vanished benchmark must not silently pass the gate watching it."""
        old = bench_record()
        new = scaled(old, 1.0)
        new["experiments"] = new["experiments"][:1]
        new["experiments"].append(
            {"experiment": "brand-new", "wall_seconds": 0.5, "params": {}}
        )
        comparison = compare_bench_records(old, new)
        by_name = {delta.experiment: delta for delta in comparison.deltas}
        assert by_name["table1-level1"].status == "MISSING"
        assert by_name["brand-new"].status == "new"
        assert [delta.experiment for delta in comparison.missing] == ["table1-level1"]
        assert comparison.exit_code() == 1  # comparable records: gates
        assert "missing from the new record" in comparison.format_table()
        # New experiments never gate on their own.
        assert compare_bench_records(old, bench_record()).exit_code() == 0

    def test_missing_experiment_is_advisory_cross_machine(self):
        old = bench_record()
        new = scaled(old, 1.0)
        new["experiments"] = new["experiments"][:1]
        new["platform"] = "Darwin-other"
        comparison = compare_bench_records(old, new)
        assert comparison.exit_code() == 0
        assert comparison.exit_code(strict=True) == 1

    def test_tiny_absolute_slowdowns_are_noise_not_regressions(self):
        """A 10x ratio on a 3ms case is under the absolute floor: no gate."""
        old = bench_record()
        for entry in old["experiments"]:
            entry["wall_seconds"] = 0.002
        old["total_wall_seconds"] = 0.004
        new = scaled(old, 10.0)  # 2ms -> 20ms (total 40ms): under the 50ms floor
        comparison = compare_bench_records(old, new, max_slowdown=1.5)
        assert comparison.regressions == []
        assert comparison.exit_code() == 0
        # The same ratio above a tighter floor gates.
        tighter = compare_bench_records(
            old, new, max_slowdown=1.5, min_slowdown_seconds=0.01
        )
        assert tighter.exit_code() == 1

    def test_zero_old_wall_gates_on_absolute_growth(self):
        old = bench_record()
        old["experiments"][0]["wall_seconds"] = 0.0
        new = scaled(old, 1.0)
        new["experiments"][0]["wall_seconds"] = 0.5  # grew from nothing
        comparison = compare_bench_records(old, new, max_slowdown=3.0)
        [fig7a] = [d for d in comparison.deltas if d.experiment == "fig7a"]
        assert fig7a.ratio is None and fig7a.regression
        assert comparison.exit_code() == 1

    def test_added_experiment_does_not_regress_total(self):
        """Extending the bench suite must not read as a total-wall slowdown."""
        old = bench_record()
        new = scaled(old, 1.0)
        new["experiments"].append(
            {"experiment": "brand-new", "wall_seconds": 50.0, "params": {}}
        )
        new["total_wall_seconds"] = old["total_wall_seconds"] + 50.0
        comparison = compare_bench_records(old, new, max_slowdown=1.5)
        [total] = [d for d in comparison.deltas if d.experiment == "TOTAL"]
        assert total.old_wall == total.new_wall == 3.0  # matched rows only
        assert not total.regression
        assert "comparable experiments only" in total.notes
        assert comparison.exit_code() == 0

    def test_workload_drift_demotes_wall_gating_to_advisory(self):
        """workers 4 -> 1 making a sweep slower is not a code regression."""
        old = bench_record()
        new = scaled(old, 6.0)
        for entry in new["experiments"]:
            entry["workers"] = 4  # old recorded workers=1
        comparison = compare_bench_records(old, new, max_slowdown=1.5)
        for delta in comparison.deltas:
            assert not delta.regression, delta.experiment
        [fig7a] = [d for d in comparison.deltas if d.experiment == "fig7a"]
        assert any("workers" in note for note in fig7a.notes)
        assert any("wall gating skipped" in note for note in fig7a.notes)
        assert comparison.exit_code() == 0
        # An identical-workload slowdown of the same size still gates.
        assert compare_bench_records(old, scaled(old, 6.0)).exit_code() == 1

    def test_strict_verdict_label_is_not_advisory(self):
        old = bench_record()
        new = scaled(old, 10.0)
        new["platform"] = "Darwin-other"
        comparison = compare_bench_records(old, new, max_slowdown=1.5)
        table = comparison.format_table()
        assert "(advisory)" in table
        assert "not gating" in table
        # With strict=True the same comparison gates, and every line of the
        # table agrees with the exit code.
        strict_table = comparison.format_table(strict=True)
        assert "(advisory)" not in strict_table
        assert "not gating" not in strict_table
        assert "gate anyway" in strict_table

    def test_format_table_mentions_every_experiment(self):
        old = bench_record()
        comparison = compare_bench_records(old, scaled(old, 2.0), max_slowdown=1.5)
        table = comparison.format_table()
        assert "fig7a" in table and "table1-level1" in table and "TOTAL" in table
        assert "REGRESSION" in table

    def test_to_dict_round_trips_through_json(self):
        old = bench_record()
        comparison = compare_bench_records(old, scaled(old, 2.0))
        payload = json.loads(json.dumps(comparison.to_dict()))
        assert payload["regressions"] == 2  # experiment rows only
        assert payload["total_regressed"] is True
        assert payload["comparable"] is True

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_bench_records(bench_record(), bench_record(), max_slowdown=0)


class TestLoadBenchRecord:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchRecordError):
            load_bench_record(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        with pytest.raises(BenchRecordError):
            load_bench_record(str(path))

    def test_not_a_bench_record(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(BenchRecordError):
            load_bench_record(str(path))


class TestCompareCli:
    def _write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    def test_cli_pass_and_table(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", bench_record())
        new = self._write(tmp_path, "new.json", scaled(bench_record(), 1.0))
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "bench compare" in out and "fig7a" in out

    def test_cli_regression_exits_1(self, tmp_path):
        old = self._write(tmp_path, "old.json", bench_record())
        new = self._write(tmp_path, "slow.json", scaled(bench_record(), 10.0))
        assert main(["bench", "--compare", old, new, "--max-slowdown", "3.0"]) == 1

    def test_cli_generous_threshold_passes_small_slowdown(self, tmp_path):
        old = self._write(tmp_path, "old.json", bench_record())
        new = self._write(tmp_path, "meh.json", scaled(bench_record(), 2.5))
        assert main(["bench", "--compare", old, new, "--max-slowdown", "3.0"]) == 0

    def test_cli_cross_machine_advisory_and_strict(self, tmp_path):
        slow = scaled(bench_record(), 10.0)
        slow["platform"] = "Darwin-arm64"
        old = self._write(tmp_path, "old.json", bench_record())
        new = self._write(tmp_path, "cross.json", slow)
        assert main(["bench", "--compare", old, new, "--max-slowdown", "3.0"]) == 0
        assert (
            main(["bench", "--compare", old, new, "--max-slowdown", "3.0", "--strict"])
            == 1
        )

    def test_cli_unreadable_record_exits_2(self, tmp_path):
        old = self._write(tmp_path, "old.json", bench_record())
        assert main(["bench", "--compare", old, str(tmp_path / "missing.json")]) == 2

    def test_cli_compare_rejects_benchmarking_flags(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", bench_record())
        new = self._write(tmp_path, "new.json", bench_record())
        for extra in (
            ["--output", str(tmp_path / "diff.json")],
            ["--smoke"],
            ["--workers", "4"],
            ["--experiments", "fig7a"],
        ):
            assert main(["bench", "--compare", old, new] + extra) == 2, extra
            assert "only apply when benchmarking" in capsys.readouterr().err

    def test_cli_bench_rejects_compare_only_flags(self, capsys):
        for extra in (["--strict"], ["--max-slowdown", "2.0"]):
            assert main(["bench", "--smoke"] + extra) == 2, extra
            assert "only apply with --compare" in capsys.readouterr().err
