"""End-to-end integration tests exercising the full toolchain.

These tests reproduce, at reduced scale, the qualitative claims of the
paper's evaluation: the claims that must hold regardless of the exact cycle
model of the simulator.
"""

import pytest

from repro.analysis import evaluate_factory_mapping
from repro.experiments import fig6_correlation, fig9_permutation, fig10_resources


class TestSingleLevelClaims:
    """Single-level factories: the linear baseline is already near optimal."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return fig10_resources.run_single_level(capacities=[4, 8])

    def test_every_method_above_lower_bound(self, sweep):
        for evaluation in sweep.evaluations:
            assert evaluation.latency >= evaluation.critical_latency

    def test_linear_close_to_lower_bound(self, sweep):
        for evaluation in sweep.evaluations:
            if evaluation.method == "linear":
                assert evaluation.latency <= 1.6 * evaluation.critical_latency

    def test_random_is_the_worst_mapping(self):
        random_eval = evaluate_factory_mapping("random", 8, levels=1, seed=0)
        linear_eval = evaluate_factory_mapping("linear", 8, levels=1)
        assert random_eval.volume > linear_eval.volume


class TestTwoLevelClaims:
    """Two-level factories: stitching wins, permutation dominates the baseline."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return fig10_resources.run_two_level(capacities=[16])

    def test_stitching_has_lowest_volume(self, sweep):
        volumes = sweep.series("volume")
        stitching = volumes["hierarchical_stitching"][16]
        for method, series in volumes.items():
            if method == "hierarchical_stitching":
                continue
            assert stitching <= series[16]

    def test_stitching_reduces_volume_over_linear(self, sweep):
        # The paper reports up to 5.64x at capacity 100; at capacity 16 the
        # reduction is smaller but must be clearly above 1.
        assert sweep.volume_reduction(16) > 1.1

    def test_graph_partition_beats_linear_at_capacity_16(self, sweep):
        volumes = sweep.series("volume")
        assert volumes["graph_partition"][16] < volumes["linear"][16]

    def test_two_level_overheads_exceed_single_level(self):
        single = evaluate_factory_mapping("linear", 4, levels=1)
        double = evaluate_factory_mapping("linear", 4, levels=2)
        assert double.volume > single.volume
        assert double.volume_over_critical >= single.volume_over_critical


class TestCorrelationClaims:
    """Fig. 6: crossings correlate positively with latency and dominate."""

    @pytest.fixture(scope="class")
    def study(self):
        return fig6_correlation.run(capacity=8, num_mappings=30, seed=0)

    def test_crossings_positive_correlation(self, study):
        assert study.measured()["edge_crossings_r"] > 0.15

    def test_length_positive_correlation(self, study):
        assert study.measured()["edge_length_r"] > 0.0

    def test_crossings_strongest_predictor(self, study):
        measured = study.measured()
        assert measured["edge_crossings_r"] >= measured["edge_length_r"]


class TestPermutationClaims:
    """Fig. 9c/9d: annealed intermediate hops reduce permutation latency."""

    @pytest.fixture(scope="class")
    def result(self):
        return fig9_permutation.run(capacities=[16], seed=0)

    def test_annealed_midpoint_not_worse_than_no_hop(self, result):
        table = result.by_mode()
        assert table["annealed_midpoint"][16] <= table["none"][16] * 1.05

    def test_all_modes_positive_latency(self, result):
        for measurement in result.measurements:
            assert measurement.latency > 0
