"""Unit tests for dependency analysis (repro.circuits.dag)."""

from repro.circuits import (
    Circuit,
    asap_levels,
    asap_start_times,
    barrier,
    build_dependency_dag,
    cnot,
    critical_path_length,
    dependency_depth,
    h,
    level_partition,
    meas_x,
)
from repro.circuits.gates import DEFAULT_DURATIONS, GateKind


def chain_gates():
    # h(0); cnot(0,1); cnot(1,2); meas(2): a pure dependency chain.
    return [h(0), cnot(0, 1), cnot(1, 2), meas_x(2)]


def parallel_gates():
    # Two completely independent CNOTs plus a dependent one.
    return [cnot(0, 1), cnot(2, 3), cnot(1, 2)]


class TestDependencyDag:
    def test_chain_dependencies(self):
        dag = build_dependency_dag(chain_gates())
        assert dag.predecessors[0] == ()
        assert dag.predecessors[1] == (0,)
        assert dag.predecessors[2] == (1,)
        assert dag.predecessors[3] == (2,)

    def test_successors_mirror_predecessors(self):
        dag = build_dependency_dag(chain_gates())
        for index, preds in enumerate(dag.predecessors):
            for pred in preds:
                assert index in dag.successors[pred]

    def test_independent_gates_have_no_edge(self):
        dag = build_dependency_dag(parallel_gates())
        assert dag.predecessors[1] == ()
        assert set(dag.predecessors[2]) == {0, 1}

    def test_roots_and_leaves(self):
        dag = build_dependency_dag(parallel_gates())
        assert dag.roots() == [0, 1]
        assert dag.leaves() == [2]

    def test_shared_qubit_is_true_dependency_even_for_reads(self):
        # Two CNOTs sharing only the control qubit still serialise (the
        # simulator treats any data hazard as a true dependency).
        dag = build_dependency_dag([cnot(0, 1), cnot(0, 2)])
        assert dag.predecessors[1] == (0,)

    def test_barrier_orders_everything(self):
        gates = [cnot(0, 1), barrier(), cnot(2, 3)]
        dag = build_dependency_dag(gates)
        assert dag.predecessors[1] == (0,)
        assert dag.predecessors[2] == (1,)

    def test_consecutive_barriers_chain(self):
        gates = [barrier(), barrier()]
        dag = build_dependency_dag(gates)
        assert dag.predecessors[1] == (0,)


class TestAsapAndCriticalPath:
    def test_asap_levels_chain(self):
        dag = build_dependency_dag(chain_gates())
        assert asap_levels(dag) == [0, 1, 2, 3]

    def test_asap_levels_parallel(self):
        dag = build_dependency_dag(parallel_gates())
        assert asap_levels(dag) == [0, 0, 1]

    def test_asap_start_times_respect_durations(self):
        dag = build_dependency_dag([cnot(0, 1), cnot(1, 2)])
        starts = asap_start_times(dag)
        assert starts == [0, DEFAULT_DURATIONS[GateKind.CNOT]]

    def test_critical_path_of_chain(self):
        expected = sum(gate.duration() for gate in chain_gates())
        assert critical_path_length(chain_gates()) == expected

    def test_critical_path_of_parallel_gates(self):
        cnot_duration = DEFAULT_DURATIONS[GateKind.CNOT]
        assert critical_path_length(parallel_gates()) == 2 * cnot_duration

    def test_critical_path_empty(self):
        assert critical_path_length([]) == 0

    def test_critical_path_accepts_circuit(self):
        circuit = Circuit()
        circuit.add_register("q", 3)
        circuit.extend(chain_gates())
        assert critical_path_length(circuit) == critical_path_length(chain_gates())

    def test_custom_durations(self):
        durations = dict(DEFAULT_DURATIONS)
        durations[GateKind.CNOT] = 10
        assert critical_path_length([cnot(0, 1)], durations) == 10

    def test_dependency_depth(self):
        assert dependency_depth(chain_gates()) == 4
        assert dependency_depth(parallel_gates()) == 2
        assert dependency_depth([]) == 0

    def test_level_partition_groups_indices(self):
        dag = build_dependency_dag(parallel_gates())
        assert level_partition(dag) == [[0, 1], [2]]

    def test_barrier_extends_critical_path_only_slightly(self):
        # Adding a barrier between independent halves adds its own duration
        # but does not multiply the critical path.
        gates = [cnot(0, 1), cnot(2, 3)]
        with_barrier = [cnot(0, 1), barrier(), cnot(2, 3)]
        base = critical_path_length(gates)
        barriered = critical_path_length(with_barrier)
        assert barriered == base + DEFAULT_DURATIONS[GateKind.CNOT] + 1


class TestFactoryCriticalPath:
    def test_factory_critical_path_positive(self, single_level_k4):
        assert critical_path_length(single_level_k4.circuit) > 0

    def test_two_level_critical_path_exceeds_single_level(
        self, single_level_k4, two_level_cap4
    ):
        # The two-level factory (k=2 per module) contains round-2 work that
        # depends on round-1 outputs, so its critical path must be longer
        # than a single round of the same module size.
        single_k2 = critical_path_length(single_level_k4.circuit)
        assert critical_path_length(two_level_cap4.circuit) > 0
        assert (
            critical_path_length(two_level_cap4.circuit)
            >= single_k2 * 0.5
        )
