"""Differential fuzz harness: tracker engines vs the scalar reference.

Each trial draws a random scenario — a random interaction-style graph
(occasionally weighted, occasionally with non-integer vertex labels), a
random layout, and a random sequence of moves, reverts and batched
evaluations — and checks that **every** available
:class:`repro.graphs.metrics.MappingCostTracker` engine (``scalar``
reference, ``vector`` when numpy is present, ``compiled`` when the C
kernel builds) stays byte-identical on the full tracker state after
every step: per-move deltas, crossings, total/weighted length, spacing
sum, combined cost, and the tracked positions.  A small corpus runs in
tier 1; the nightly CI job widens it with ``--fuzz-iterations``.

Failures are collected, not raised one at a time: the assertion message
lists every failing seed with a one-line repro command
(``--fuzz-seeds=<seed>`` replays exactly that trial).
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graphs import MappingCostTracker, tracker_engines

#: Offset added to the trial index so seed 0 is not a magic value.
SEED_BASE = 20260808


def _engines():
    return tracker_engines()


def _random_graph(rng: random.Random) -> nx.Graph:
    n = rng.randint(4, 32)
    graph = nx.gnm_random_graph(
        n, rng.randint(n - 1, 3 * n), seed=rng.randrange(1 << 30)
    )
    if rng.random() < 0.3:  # weighted edges exercise weighted-length sums
        for a, b in graph.edges():
            graph[a][b]["weight"] = rng.choice([0.5, 1.0, 2.0, 3.5])
    if rng.random() < 0.2:  # string ids force the compiled->vector fallback
        graph = nx.relabel_nodes(graph, {v: f"q{v}" for v in graph.nodes()})
    return graph


def _random_layout(rng: random.Random, graph: nx.Graph):
    span = rng.randint(6, 18)
    return {
        vertex: (float(rng.randrange(span)), float(rng.randrange(span)))
        for vertex in graph.nodes()
    }


def _random_updates(rng: random.Random, vertices, span: int):
    chosen = rng.sample(vertices, min(len(vertices), rng.randint(1, 3)))
    return {
        vertex: (float(rng.randrange(span)), float(rng.randrange(span)))
        for vertex in chosen
    }


def _state(tracker: MappingCostTracker):
    return (
        tracker.crossings,
        tracker.total_edge_length,
        tracker.total_weighted_length,
        tracker.spacing_sum,
        tracker.cost(),
        dict(tracker._positions),
    )


def run_trial(seed: int) -> None:
    """One differential trial; raises AssertionError on any divergence."""
    rng = random.Random(SEED_BASE + seed)
    graph = _random_graph(rng)
    layout = _random_layout(rng, graph)
    vertices = sorted(graph.nodes(), key=str)
    span = 20
    trackers = {
        engine: MappingCostTracker(graph, dict(layout), engine=engine)
        for engine in _engines()
        if engine != "compiled" or trackers_support_compiled(graph)
    }
    reference = trackers["scalar"]
    ref_state = _state(reference)
    for engine, tracker in trackers.items():
        assert _state(tracker) == ref_state, (
            f"engine={engine!r} diverged from the scalar reference "
            f"at construction (seed {seed})"
        )

    for step in range(rng.randint(10, 40)):
        action = rng.random()
        if action < 0.55:  # apply, keep
            updates = _random_updates(rng, vertices, span)
            deltas = {
                engine: tracker.apply(updates)
                for engine, tracker in trackers.items()
            }
            expected = deltas["scalar"]
            for engine, delta in deltas.items():
                assert delta == expected, (
                    f"engine={engine!r} diverged on the apply() delta "
                    f"at step {step} (seed {seed})"
                )
        elif action < 0.8:  # apply, then revert
            updates = _random_updates(rng, vertices, span)
            for tracker in trackers.values():
                tracker.apply(updates)
                tracker.revert_last()
        else:  # batched evaluation of independent proposals (no commit)
            proposals = [
                _random_updates(rng, vertices, span)
                for _ in range(rng.randint(1, 6))
            ]
            batches = {
                engine: tracker.evaluate_many(proposals)
                for engine, tracker in trackers.items()
            }
            expected_batch = batches["scalar"]
            for engine, batch in batches.items():
                assert batch == expected_batch, (
                    f"engine={engine!r} diverged on evaluate_many() "
                    f"at step {step} (seed {seed})"
                )
            singles = [reference.evaluate(updates) for updates in proposals]
            assert expected_batch == singles, (
                f"evaluate_many() diverged from per-move evaluate() "
                f"at step {step} (seed {seed})"
            )
        ref_state = _state(reference)
        for engine, tracker in trackers.items():
            assert _state(tracker) == ref_state, (
                f"engine={engine!r} diverged on the tracker state "
                f"at step {step} (seed {seed})"
            )


def trackers_support_compiled(graph: nx.Graph) -> bool:
    """Whether the compiled engine accepts this graph's vertex ids."""
    return all(isinstance(vertex, int) for vertex in graph.nodes())


def test_differential_fuzz(request):
    """Sweep the seeded corpus; report every failing seed with a repro."""
    seeds_option = request.config.getoption("--fuzz-seeds")
    if seeds_option:
        seeds = [int(token) for token in str(seeds_option).split(",") if token.strip()]
    else:
        seeds = list(range(request.config.getoption("--fuzz-iterations")))
    failures = []
    for seed in seeds:
        try:
            run_trial(seed)
        except AssertionError as error:
            failures.append((seed, str(error).splitlines()[0]))
    if failures:
        lines = [f"{len(failures)} of {len(seeds)} fuzz trials diverged:"]
        for seed, message in failures:
            lines.append(
                f"  seed {seed}: {message}\n"
                f"    repro: python -m pytest "
                f"tests/test_metrics_fuzz.py::test_differential_fuzz "
                f"--fuzz-seeds={seed}"
            )
        pytest.fail("\n".join(lines))


def test_harness_detects_divergence(monkeypatch):
    """The harness itself must fail loudly if an engine ever lies."""
    real_apply = MappingCostTracker.apply

    def corrupted(self, updates):
        delta = real_apply(self, updates)
        if self.engine == "scalar":
            return delta
        return delta + 1.0

    monkeypatch.setattr(MappingCostTracker, "apply", corrupted)
    with pytest.raises(AssertionError, match="diverged"):
        run_trial(0)
