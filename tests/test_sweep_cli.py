"""Tests for the ``repro-msfu sweep run / status / gc`` command family.

These drive the CLI through :func:`repro.cli.main` exactly as a shell
would, against a store rooted in a temp directory.
"""

from __future__ import annotations

import json

from repro.api import ResultStore, SweepExecutor, SweepPlan
from repro.cli import main


METHODS = "linear,graph_partition"


def run_cli(argv):
    return main(argv)


class TestSweepRun:
    def test_grid_run_table_output(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = run_cli(
            [
                "sweep",
                "run",
                "--methods",
                METHODS,
                "--capacities",
                "2,3",
                "--store",
                str(store),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "linear" in out and "graph_partition" in out
        assert len(ResultStore(store)) == 4

    def test_resume_answers_from_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = [
            "sweep",
            "run",
            "--methods",
            METHODS,
            "--capacities",
            "2,3",
            "--store",
            str(store),
            "--json",
        ]
        assert run_cli(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["stats"]["evaluations"] == 4
        assert run_cli(argv + ["--resume"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["stats"]["store_hits"] == 4
        assert second["stats"]["evaluations"] == 0
        assert second["evaluations"] == first["evaluations"]

    def test_plan_file_round_trip(self, tmp_path, capsys):
        plan = SweepPlan.from_grid(methods=("linear",), capacities=(2,))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        code = run_cli(
            [
                "sweep",
                "run",
                "--plan",
                str(plan_path),
                "--store",
                str(tmp_path / "store"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        [evaluation] = payload["evaluations"]
        assert evaluation["method"] == "linear"
        assert evaluation["capacity"] == 2

    def test_cli_output_matches_api_run(self, tmp_path, capsys):
        """The CLI is a thin shell over the executor: same numbers."""
        code = run_cli(
            [
                "sweep",
                "run",
                "--methods",
                "linear",
                "--capacities",
                "2,3",
                "--store",
                str(tmp_path / "store"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        reference = SweepExecutor(workers=1).run(
            SweepPlan.from_grid(methods=("linear",), capacities=(2, 3))
        )
        assert payload["evaluations"] == [
            evaluation.to_dict() for evaluation in reference.evaluations
        ]

    def test_output_file(self, tmp_path):
        out_path = tmp_path / "sweep.json"
        code = run_cli(
            [
                "sweep",
                "run",
                "--methods",
                "linear",
                "--capacities",
                "2",
                "--store",
                str(tmp_path / "store"),
                "--json",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-msfu-sweep/v1"

    def test_grid_and_plan_are_mutually_exclusive(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps(
                SweepPlan.from_grid(methods=("linear",), capacities=(2,)).to_dict()
            )
        )
        code = run_cli(
            [
                "sweep",
                "run",
                "--plan",
                str(plan_path),
                "--methods",
                "linear",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_mapper_is_clean_exit_2_not_traceback(self, tmp_path, capsys):
        code = run_cli(
            [
                "sweep",
                "run",
                "--methods",
                "no-such-mapper",
                "--capacities",
                "2",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-mapper" in err and "sweep run:" in err

    def test_plan_excludes_all_grid_flags(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps(
                SweepPlan.from_grid(methods=("linear",), capacities=(2,)).to_dict()
            )
        )
        for extra in (["--seeds", "1,2"], ["--levels", "2"], ["--reuse"]):
            code = run_cli(
                [
                    "sweep",
                    "run",
                    "--plan",
                    str(plan_path),
                    "--store",
                    str(tmp_path / "store"),
                ]
                + extra
            )
            assert code == 2, extra
            assert "mutually exclusive" in capsys.readouterr().err

    def test_malformed_plan_file_is_clean_exit_2(self, tmp_path, capsys):
        for content in ('[1, 2, 3]', '{"requests": [{"method": "linear"}]}'):
            plan_path = tmp_path / "bad_plan.json"
            plan_path.write_text(content)
            code = run_cli(
                [
                    "sweep",
                    "run",
                    "--plan",
                    str(plan_path),
                    "--store",
                    str(tmp_path / "store"),
                ]
            )
            assert code == 2, content
            assert "not a valid sweep plan" in capsys.readouterr().err

    def test_plan_with_unknown_mapper_exit_2_lists_registered(
        self, tmp_path, capsys
    ):
        """Mapper names in a --plan file are validated before any work runs."""
        plan = SweepPlan.from_grid(methods=("linear", "typo"), capacities=(2,))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        code = run_cli(
            [
                "sweep",
                "run",
                "--plan",
                str(plan_path),
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "'typo'" in err
        # The registered names are listed so the fix is obvious.
        assert "linear" in err and "graph_partition" in err
        # Nothing was evaluated or persisted.
        assert len(ResultStore(tmp_path / "store")) == 0

    def test_malformed_plan_error_names_the_offending_field(
        self, tmp_path, capsys
    ):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps({"requests": [{"method": "linear", "capcity": 2}]})
        )
        code = run_cli(
            [
                "sweep",
                "run",
                "--plan",
                str(plan_path),
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "requests[0].capcity" in err
        assert "not a valid sweep plan" in err

    def test_missing_grid_options_exit_2(self, tmp_path, capsys):
        code = run_cli(["sweep", "run", "--store", str(tmp_path / "store")])
        assert code == 2
        assert "needs --methods" in capsys.readouterr().err

    def test_invalid_workers_exit_2(self, tmp_path):
        code = run_cli(
            [
                "sweep",
                "run",
                "--methods",
                "linear",
                "--capacities",
                "2",
                "--workers",
                "0",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 2


class TestSweepStatus:
    def test_status_json(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_cli(
            [
                "sweep",
                "run",
                "--methods",
                "linear",
                "--capacities",
                "2,3",
                "--store",
                str(store),
            ]
        )
        capsys.readouterr()
        assert run_cli(["sweep", "status", "--store", str(store), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["entries"] == 2
        assert status["corrupt"] == 0
        assert status["schema_version"] >= 1

    def test_status_empty_store(self, tmp_path, capsys):
        assert run_cli(["sweep", "status", "--store", str(tmp_path / "none")]) == 0
        assert "entries:      0" in capsys.readouterr().out


class TestSweepGc:
    def test_gc_dry_run_then_real(self, tmp_path, capsys):
        store_root = tmp_path / "store"
        run_cli(
            [
                "sweep",
                "run",
                "--methods",
                "linear",
                "--capacities",
                "2",
                "--store",
                str(store_root),
            ]
        )
        capsys.readouterr()
        # Age the single entry far into the past.
        store = ResultStore(store_root)
        [(path, payload)] = list(store.entries())
        payload["meta"]["created_unix"] -= 90 * 86400
        path.write_text(json.dumps(payload))

        assert (
            run_cli(
                [
                    "sweep",
                    "gc",
                    "--store",
                    str(store_root),
                    "--keep-days",
                    "30",
                    "--dry-run",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == 1
        assert len(report["removed_paths"]) == 1
        assert report["kept"] == 0
        assert report["dry_run"] is True
        assert len(store) == 1  # dry run deleted nothing

        assert (
            run_cli(
                ["sweep", "gc", "--store", str(store_root), "--keep-days", "30"]
            )
            == 0
        )
        assert len(store) == 0

    def test_gc_negative_keep_days_exit_2(self, tmp_path):
        assert (
            run_cli(
                [
                    "sweep",
                    "gc",
                    "--store",
                    str(tmp_path / "store"),
                    "--keep-days",
                    "-1",
                ]
            )
            == 2
        )
