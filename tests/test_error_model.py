"""Unit tests for the analytic error model (repro.distillation.error_model)."""

import pytest

from repro.distillation import (
    ErrorBudget,
    bravyi_haah_output_error,
    bravyi_haah_success_probability,
    multi_level_output_errors,
    required_code_distance,
    required_levels,
    surface_code_logical_error,
)


class TestSurfaceCode:
    def test_logical_error_formula(self):
        # d=3, p=1e-3: P_L = 3 * (0.1)^2 = 0.03.
        assert surface_code_logical_error(3, 1e-3) == pytest.approx(0.03)

    def test_logical_error_decreases_with_distance(self):
        p = 1e-3
        errors = [surface_code_logical_error(d, p) for d in (3, 5, 7, 9)]
        assert errors == sorted(errors, reverse=True)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            surface_code_logical_error(0, 1e-3)
        with pytest.raises(ValueError):
            surface_code_logical_error(3, 1.5)

    def test_required_code_distance_monotone_in_target(self):
        lenient = required_code_distance(1e-3, 1e-6)
        strict = required_code_distance(1e-3, 1e-12)
        assert strict >= lenient
        assert lenient % 2 == 1
        assert strict % 2 == 1

    def test_required_code_distance_meets_target(self):
        target = 1e-9
        d = required_code_distance(1e-3, target)
        assert surface_code_logical_error(d, 1e-3) <= target

    def test_required_code_distance_unreachable(self):
        # Above-threshold error rates can never reach the target.
        with pytest.raises(ValueError):
            required_code_distance(0.5, 1e-9, max_distance=21)

    def test_required_code_distance_rejects_bad_target(self):
        with pytest.raises(ValueError):
            required_code_distance(1e-3, 0.0)


class TestBravyiHaah:
    def test_output_error_formula(self):
        assert bravyi_haah_output_error(8, 1e-2) == pytest.approx(25 * 1e-4)

    def test_output_error_quadratic_suppression(self):
        assert bravyi_haah_output_error(2, 1e-3) < 1e-3

    def test_success_probability_first_order(self):
        assert bravyi_haah_success_probability(8, 1e-3) == pytest.approx(1 - 32 * 1e-3)

    def test_success_probability_clamped(self):
        assert bravyi_haah_success_probability(8, 0.5) == 0.0
        assert bravyi_haah_success_probability(8, 0.0) == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            bravyi_haah_output_error(0, 1e-3)
        with pytest.raises(ValueError):
            bravyi_haah_success_probability(0, 1e-3)

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            bravyi_haah_output_error(2, -0.1)


class TestMultiLevel:
    def test_per_round_errors_decrease(self):
        errors = multi_level_output_errors(4, 3, 1e-2)
        assert len(errors) == 3
        assert errors[0] > errors[1] > errors[2]

    def test_recursion_matches_single_application(self):
        single = bravyi_haah_output_error(4, 1e-2)
        double = bravyi_haah_output_error(4, single)
        assert multi_level_output_errors(4, 2, 1e-2)[-1] == pytest.approx(double)

    def test_required_levels(self):
        assert required_levels(4, 1e-2, 1e-2) == 0
        # One round: (1 + 3*4) * (1e-2)^2 = 1.3e-3; two rounds: ~2.2e-6.
        assert required_levels(4, 1e-2, 2e-3) == 1
        assert required_levels(4, 1e-2, 1e-4) == 2

    def test_required_levels_unreachable(self):
        # With an input error rate where distillation no longer converges,
        # the target can never be reached.
        with pytest.raises(ValueError):
            required_levels(8, 0.2, 1e-9, max_levels=5)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            multi_level_output_errors(4, 0, 1e-2)


class TestErrorBudget:
    def test_defaults_are_sensible(self):
        budget = ErrorBudget()
        assert 0 < budget.physical_error < budget.injection_error < 1

    def test_output_errors_delegate(self):
        budget = ErrorBudget(injection_error=1e-2)
        assert budget.output_errors(4, 2) == multi_level_output_errors(4, 2, 1e-2)

    def test_levels_needed(self):
        budget = ErrorBudget(injection_error=1e-2, target_error=1e-4)
        assert budget.levels_needed(4) == 2
