"""Unit tests for scheduling utilities (barriers, renaming, critical-path bounds)."""

from repro.circuits import (
    Circuit,
    GateKind,
    cnot,
    critical_path_length,
    h,
    meas_x,
)
from repro.distillation import FactorySpec
from repro.scheduling import (
    asap_timesteps,
    circuit_lower_bound,
    count_false_dependencies,
    expand_barriers_to_cxx,
    factory_area_lower_bound,
    factory_latency_lower_bound,
    factory_volume_lower_bound,
    insert_round_barriers,
    lower_bound_summary,
    rename_after_measurement,
    reorder_commuting_preparations,
    reuse_area_savings,
    sharing_after_measurement_pairs,
    strip_barriers,
    timestep_degree_bound,
)


def reuse_circuit():
    """A circuit that measures a qubit and then reuses it."""
    circuit = Circuit("reuse")
    circuit.add_register("q", 3)
    circuit.append(h(0))
    circuit.append(cnot(0, 1))
    circuit.append(meas_x(1))
    circuit.append(h(1))          # reuse after measurement (false dependency)
    circuit.append(cnot(1, 2))
    circuit.append(meas_x(2))
    return circuit


class TestBarriers:
    def test_insert_round_barriers(self, two_level_cap4):
        slices = two_level_cap4.round_gate_slices
        rebuilt = insert_round_barriers(two_level_cap4.circuit, slices)
        assert sum(1 for g in rebuilt if g.is_barrier) == len(slices) - 1

    def test_strip_barriers(self, two_level_cap4):
        stripped = strip_barriers(two_level_cap4.circuit)
        assert all(not g.is_barrier for g in stripped)
        assert len(stripped) == len(two_level_cap4.circuit) - 1

    def test_strip_then_insert_is_consistent(self, two_level_cap4):
        stripped = strip_barriers(two_level_cap4.circuit)
        non_barrier_original = [g for g in two_level_cap4.circuit if not g.is_barrier]
        assert list(stripped.gates) == non_barrier_original

    def test_expand_barriers_to_cxx(self, two_level_cap4):
        expanded = expand_barriers_to_cxx(two_level_cap4.circuit)
        assert all(not g.is_barrier for g in expanded)
        cxx_machine_wide = [
            g
            for g in expanded
            if g.kind is GateKind.CXX
            and len(g.targets) == two_level_cap4.circuit.num_qubits
        ]
        assert len(cxx_machine_wide) == 1
        assert "barrier_anc" in expanded.registers

    def test_expand_without_barriers_is_identity_on_gates(self, single_level_k4):
        expanded = expand_barriers_to_cxx(single_level_k4.circuit)
        assert len(expanded) == len(single_level_k4.circuit)

    def test_barrier_extension_is_bounded_by_serial_rounds(self, two_level_cap4):
        # A barrier can at worst serialise the rounds: the barriered critical
        # path is bounded by the sum of the per-round critical paths plus the
        # barrier itself (Section V-A discusses why the practical effect is
        # small once the protocol's checkpoints are taken into account).
        with_barrier = critical_path_length(two_level_cap4.circuit)
        without_barrier = critical_path_length(strip_barriers(two_level_cap4.circuit))
        per_round = sum(
            critical_path_length(two_level_cap4.round_gates(r)) for r in (1, 2)
        )
        assert with_barrier >= without_barrier
        assert with_barrier <= per_round + 1


class TestTimesteps:
    def test_asap_timesteps_cover_all_gates(self, single_level_k4):
        steps = asap_timesteps(single_level_k4.circuit)
        assert sum(len(step) for step in steps) == len(single_level_k4.circuit)

    def test_timestep_degree_bound_at_most_two(self, single_level_k8):
        # The paper's observation: per timestep the two-qubit interaction
        # graph (multi-target fan-outs aside) is a union of vertex-disjoint
        # paths, so degree stays at most 2.
        assert timestep_degree_bound(
            single_level_k8.circuit, include_multi_target=False
        ) <= 2
        # With the CXX fan-outs included the control's degree is what grows.
        assert timestep_degree_bound(single_level_k8.circuit) >= 2

    def test_empty_circuit(self):
        assert asap_timesteps([]) == []
        assert timestep_degree_bound([]) == 0

    def test_reorder_commuting_preparations_preserves_counts(self, single_level_k4):
        hoisted = reorder_commuting_preparations(single_level_k4.circuit)
        assert len(hoisted) == len(single_level_k4.circuit)
        assert hoisted.gate_counts() == single_level_k4.circuit.gate_counts()

    def test_reorder_does_not_extend_critical_path(self, single_level_k4):
        hoisted = reorder_commuting_preparations(single_level_k4.circuit)
        assert critical_path_length(hoisted) <= critical_path_length(
            single_level_k4.circuit
        )


class TestRenaming:
    def test_sharing_after_measurement_detected(self):
        pairs = sharing_after_measurement_pairs(reuse_circuit())
        assert pairs == [(2, 3)]

    def test_count_false_dependencies(self):
        assert count_false_dependencies(reuse_circuit()) == 1

    def test_rename_removes_false_dependencies(self):
        renamed, log = rename_after_measurement(reuse_circuit())
        assert count_false_dependencies(renamed) == 0
        assert log == {1: [renamed.register("renamed")[0]]}

    def test_rename_adds_fresh_qubits(self):
        renamed, _log = rename_after_measurement(reuse_circuit())
        assert renamed.num_qubits == reuse_circuit().num_qubits + 1

    def test_rename_preserves_gate_count(self):
        renamed, _log = rename_after_measurement(reuse_circuit())
        assert len(renamed) == len(reuse_circuit())

    def test_rename_noop_without_reuse(self, single_level_k4):
        renamed, log = rename_after_measurement(single_level_k4.circuit)
        assert log == {}
        assert renamed.num_qubits == single_level_k4.circuit.num_qubits

    def test_reuse_factory_has_false_dependencies(
        self, two_level_cap4_reuse, two_level_cap4
    ):
        assert count_false_dependencies(two_level_cap4_reuse.circuit) > 0
        assert count_false_dependencies(two_level_cap4.circuit) == 0

    def test_rename_shortens_or_preserves_critical_path(self, two_level_cap4_reuse):
        renamed, _log = rename_after_measurement(two_level_cap4_reuse.circuit)
        assert critical_path_length(renamed) <= critical_path_length(
            two_level_cap4_reuse.circuit
        )

    def test_reuse_area_savings(self, two_level_cap4_reuse):
        assert reuse_area_savings(two_level_cap4_reuse.circuit) > 0


class TestLowerBounds:
    def test_circuit_lower_bound_matches_critical_path(self, single_level_k4):
        assert circuit_lower_bound(single_level_k4.circuit) == critical_path_length(
            single_level_k4.circuit
        )

    def test_factory_latency_bound_grows_with_capacity(self):
        small = factory_latency_lower_bound(FactorySpec(k=2, levels=1))
        large = factory_latency_lower_bound(FactorySpec(k=8, levels=1))
        assert large > small

    def test_factory_area_bound_is_largest_round(self):
        spec = FactorySpec(k=4, levels=2)
        assert factory_area_lower_bound(spec) == 20 * 33

    def test_volume_bound_is_product(self):
        spec = FactorySpec(k=2, levels=2)
        assert factory_volume_lower_bound(spec) == factory_latency_lower_bound(
            spec
        ) * factory_area_lower_bound(spec)

    def test_summary_keys(self):
        summary = lower_bound_summary(FactorySpec(k=2, levels=1))
        assert set(summary) == {"latency", "area", "volume"}
        assert summary["volume"] == summary["latency"] * summary["area"]

    def test_two_level_bound_exceeds_single_level(self):
        single = factory_volume_lower_bound(FactorySpec(k=4, levels=1))
        double = factory_volume_lower_bound(FactorySpec(k=4, levels=2))
        assert double > single
