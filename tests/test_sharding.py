"""Tests for the distributed sweep layer: sharding, merge, work stealing.

The contract under test, end to end: **any union of shard stores —
disjoint, overlapping, duplicated, raced, or killed mid-run and resumed —
serializes byte-identical to one uninterrupted sweep.**
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ClaimDir,
    MergeConflictError,
    ResultStore,
    ResultStoreWarning,
    ShardSpec,
    SweepExecutor,
    SweepPlan,
    get_mapper,
    load_shard_file,
    plan_fingerprint,
    register_mapper,
    run_shard,
    shard_specs,
    unregister_mapper,
    write_shard_files,
)
from repro.api.sharding import ShardRunResult
from repro.cli import main
from repro.service.jobs import JobManager
from repro.service.wire import WireFormatError, decode_shard_spec


def small_plan(capacities=(2, 3, 4)) -> SweepPlan:
    return SweepPlan.from_grid(methods=("linear", "random"), capacities=capacities)


def run_output(store, plan) -> str:
    """The canonical serialized sweep output, resolved purely from a store."""
    result = SweepExecutor(store=store, resume=True).run(plan)
    assert result.stats.evaluations == 0, "store did not cover the plan"
    return json.dumps(result.to_dict(), sort_keys=True)


def baseline_output(plan) -> str:
    return json.dumps(SweepExecutor().run(plan).to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# ShardSpec: partitioning and identity
# ----------------------------------------------------------------------
class TestShardSpec:
    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    @pytest.mark.parametrize("total", [0, 1, 5, 6, 7, 20])
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_partition_covers_every_position_exactly_once(
        self, strategy, total, count
    ):
        covered = sorted(
            position
            for spec in shard_specs(count, strategy)
            for position in spec.plan_indices(total)
        )
        assert covered == list(range(total))

    def test_contiguous_blocks_are_balanced(self):
        sizes = [len(s.plan_indices(10)) for s in shard_specs(3, "contiguous")]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_strided_samples_whole_range(self):
        assert ShardSpec(1, 3, "strided").plan_indices(7) == (1, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            ShardSpec(0, 0)
        with pytest.raises(ValueError, match="index"):
            ShardSpec(3, 3)
        with pytest.raises(ValueError, match="strategy"):
            ShardSpec(0, 1, "zigzag")

    def test_round_trip(self):
        spec = ShardSpec(2, 5, "strided")
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_fingerprints_distinguish_piece_plan_and_strategy(self):
        plan = small_plan()
        other = small_plan(capacities=(2, 3, 5))
        fp, other_fp = plan_fingerprint(plan), plan_fingerprint(other)
        assert fp != other_fp
        ids = {
            ShardSpec(i, 3, strategy).fingerprint(fp)
            for i in range(3)
            for strategy in ("contiguous", "strided")
        }
        assert len(ids) == 6  # every piece/strategy distinct
        assert ShardSpec(0, 3).fingerprint(fp) != ShardSpec(0, 3).fingerprint(
            other_fp
        )
        # Deterministic: same inputs, same identity (cross-machine contract).
        assert ShardSpec(0, 3).fingerprint(fp) == ShardSpec(0, 3).fingerprint(fp)

    def test_subplan_preserves_order(self):
        plan = small_plan()
        sub = ShardSpec(1, 2, "strided").subplan(plan)
        assert [r.to_dict() for r in sub] == [
            plan[i].to_dict() for i in ShardSpec(1, 2, "strided").plan_indices(len(plan))
        ]


class TestShardFiles:
    def test_round_trip(self, tmp_path):
        plan = small_plan()
        paths = write_shard_files(plan, 3, tmp_path, strategy="strided")
        assert [p.name for p in paths] == [
            "shard-00-of-3.json",
            "shard-01-of-3.json",
            "shard-02-of-3.json",
        ]
        loaded_plan, spec = load_shard_file(paths[2])
        assert spec == ShardSpec(2, 3, "strided")
        assert plan_fingerprint(loaded_plan) == plan_fingerprint(plan)

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "not-a-shard.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="not a shard file"):
            load_shard_file(path)

    def test_rejects_stale_fingerprint(self, tmp_path):
        plan = small_plan()
        [path, *_] = write_shard_files(plan, 2, tmp_path)
        payload = json.loads(path.read_text())
        payload["plan_fingerprint"] = "0" * 40
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="different plan"):
            load_shard_file(path)


# ----------------------------------------------------------------------
# Work-stealing claims
# ----------------------------------------------------------------------
class TestClaimDir:
    def test_race_has_one_winner(self, tmp_path):
        a = ClaimDir(tmp_path, owner="shard-a")
        b = ClaimDir(tmp_path, owner="shard-b")
        assert a.claim("f" * 40) == "won"
        assert b.claim("f" * 40) == "theirs"  # lost the race
        assert a.claim("f" * 40) == "ours"  # crash-resume reclaims
        assert a.owner_of("f" * 40) == "shard-a"
        assert len(a) == 1

    def test_unreadable_claim_stays_claimed(self, tmp_path):
        claims = ClaimDir(tmp_path, owner="shard-a")
        claims.path_for("a" * 40).parent.mkdir(parents=True, exist_ok=True)
        claims.path_for("a" * 40).write_text("{not json")
        with pytest.warns(ResultStoreWarning, match="unreadable claim"):
            assert claims.claim("a" * 40) == "theirs"


# ----------------------------------------------------------------------
# run_shard + merge: the byte-identity invariant
# ----------------------------------------------------------------------
class TestShardMergeIdentity:
    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    def test_disjoint_shards_merge_to_identical_output(self, tmp_path, strategy):
        plan = small_plan()
        stores = []
        for spec in shard_specs(3, strategy):
            store = ResultStore(tmp_path / f"s{spec.index}")
            result = run_shard(plan, spec, store)  # no claim dir: pure partition
            assert result.stolen == [] and result.yielded == []
            assert result.own == list(spec.plan_indices(len(plan)))
            stores.append(store)
        merged = ResultStore(tmp_path / "merged")
        report = merged.merge([s.root for s in stores])
        assert report.merged == len(plan)
        assert report.conflicts == 0
        assert run_output(merged, plan) == baseline_output(plan)

    def test_overlapping_shards_are_identical_duplicates(self, tmp_path):
        plan = small_plan()
        # Both "shards" run the whole plan: total overlap, zero conflicts.
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        run_shard(plan, ShardSpec(0, 1), a)
        run_shard(plan, ShardSpec(0, 1), b)
        merged = ResultStore(tmp_path / "merged")
        report = merged.merge([a.root, b.root])
        assert report.merged == len(plan)
        assert report.identical == len(plan)  # second source all duplicates
        assert report.conflicts == 0
        assert run_output(merged, plan) == baseline_output(plan)

    def test_duplicate_points_across_shards(self, tmp_path):
        # The same request appears at several plan positions spanning shard
        # boundaries; ownership follows the first occurrence, duplicates
        # elsewhere are dedup hits, and the merged output still matches.
        base = small_plan(capacities=(2, 3))
        plan = SweepPlan.from_requests(list(base) + list(base))
        stores = []
        for spec in shard_specs(2, "contiguous"):
            store = ResultStore(tmp_path / f"s{spec.index}")
            run_shard(plan, spec, store)
            stores.append(store)
        merged = ResultStore(tmp_path / "merged")
        merged.merge([s.root for s in stores])
        assert run_output(merged, plan) == baseline_output(plan)

    def test_work_stealing_covers_unstarted_shards(self, tmp_path):
        plan = small_plan()
        claims = tmp_path / "claims"
        first = ResultStore(tmp_path / "s0")
        result = run_shard(plan, ShardSpec(0, 3, "strided"), first, claim_dir=claims)
        # Running alone, shard 0 claims and steals every foreign point.
        assert len(result.own) + len(result.stolen) == len(plan)
        late = ResultStore(tmp_path / "s1")
        late_result = run_shard(
            plan, ShardSpec(1, 3, "strided"), late, claim_dir=claims
        )
        # Everything was already claimed: the late shard yields its points.
        assert late_result.yielded == late_result.own
        assert late_result.stats.evaluations == 0
        merged = ResultStore(tmp_path / "merged")
        merged.merge([first.root, late.root])
        assert run_output(merged, plan) == baseline_output(plan)

    def test_no_steal_claims_but_keeps_partition(self, tmp_path):
        plan = small_plan()
        store = ResultStore(tmp_path / "s0")
        spec = ShardSpec(0, 3, "strided")
        result = run_shard(
            plan, spec, store, claim_dir=tmp_path / "claims", steal=False
        )
        assert result.stolen == []
        assert result.own == list(spec.plan_indices(len(plan)))

    def test_killed_shard_resumes_and_merge_is_identical(self, tmp_path):
        """The CI shard-merge scenario at API level: SIGKILL one shard
        mid-run (simulated by a mapper that starts failing), resume it with
        the same arguments, merge all shards, byte-identical output."""
        linear = get_mapper("linear")
        calls = {"n": 0}

        def flaky(factory, seed=0, context=None):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("simulated kill")
            return linear.place(factory, seed=seed, context=context)

        plan = SweepPlan.from_grid(
            methods=("flaky-shard",), capacities=(2, 3, 4, 5)
        )
        register_mapper(flaky, name="flaky-shard")
        try:
            claims = tmp_path / "claims"
            spec = ShardSpec(0, 2, "contiguous")
            store = ResultStore(tmp_path / "s0")
            with pytest.raises(RuntimeError, match="simulated kill"):
                run_shard(plan, spec, store, claim_dir=claims)
            assert len(store) == 1  # the pre-kill prefix survived

            calls["n"] = -100  # "restart": the mapper works again
            resumed = run_shard(plan, spec, store, claim_dir=claims)
            # Own claims from the killed run are reclaimed, not yielded.
            assert resumed.yielded == []
            assert resumed.stats.store_hits == 1

            other = ResultStore(tmp_path / "s1")
            run_shard(plan, ShardSpec(1, 2, "contiguous"), other, claim_dir=claims)
            merged = ResultStore(tmp_path / "merged")
            merged.merge([store.root, other.root])
            assert run_output(merged, plan) == baseline_output(plan)
        finally:
            unregister_mapper("flaky-shard")

    def test_shard_run_result_round_trip(self, tmp_path):
        plan = small_plan()
        result = run_shard(plan, ShardSpec(0, 2), ResultStore(tmp_path / "s"))
        restored = ShardRunResult.from_dict(result.to_dict())
        assert restored.to_dict() == result.to_dict()

    def test_progress_events_cover_every_point(self, tmp_path):
        plan = small_plan()
        events = []
        run_shard(
            plan,
            ShardSpec(0, 1),
            ResultStore(tmp_path / "s"),
            progress=events.append,
        )
        assert [e.done for e in events] == list(range(1, len(plan) + 1))
        assert sorted(e.plan_index for e in events) == list(range(len(plan)))
        assert all(e.phase == "own" and e.source == "evaluated" for e in events)


# ----------------------------------------------------------------------
# Merge semantics: conflicts, corruption, stale schemas
# ----------------------------------------------------------------------
class TestMergeSemantics:
    def seed_store(self, root, capacities=(2, 3)):
        store = ResultStore(root)
        plan = small_plan(capacities=capacities)
        SweepExecutor(store=store, resume=True).run(plan)
        return store, plan

    def test_conflict_raises_by_default(self, tmp_path):
        source, plan = self.seed_store(tmp_path / "src")
        merged = ResultStore(tmp_path / "dst")
        merged.merge([source.root])
        # Corrupt one merged payload's result (valid JSON, correct label).
        path = next(iter(sorted(merged.root.glob("*/*.json"))))
        payload = json.loads(path.read_text())
        payload["result"]["latency"] = 10**9
        path.write_text(json.dumps(payload))
        with pytest.raises(MergeConflictError) as info:
            merged.merge([source.root])
        assert info.value.fingerprint == path.stem
        assert "--prefer-newest" in str(info.value)

    def test_prefer_newest_resolves_conflicts(self, tmp_path):
        source, plan = self.seed_store(tmp_path / "src")
        merged = ResultStore(tmp_path / "dst")
        merged.merge([source.root])
        path = next(iter(sorted(merged.root.glob("*/*.json"))))
        payload = json.loads(path.read_text())
        payload["result"]["latency"] = 10**9
        payload["meta"]["created_unix"] = 0.0  # corrupted copy is older
        path.write_text(json.dumps(payload))
        report = merged.merge([source.root], prefer_newest=True)
        assert report.conflicts == 1
        assert report.sources[0].preferred == 1
        # The honest (newer) source payload won: output matches baseline.
        assert run_output(merged, plan) == baseline_output(plan)

    def test_corrupt_source_entry_skipped_with_warning(self, tmp_path):
        source, plan = self.seed_store(tmp_path / "src")
        bad = source.root / "ee"
        bad.mkdir(exist_ok=True)
        (bad / ("e" * 40 + ".json")).write_text("{torn write")
        merged = ResultStore(tmp_path / "dst")
        with pytest.warns(ResultStoreWarning, match="unreadable"):
            report = merged.merge([source.root])
        assert report.sources[0].bad_entries == 1
        assert report.merged == len(plan)
        assert run_output(merged, plan) == baseline_output(plan)

    def test_mislabelled_source_entry_skipped(self, tmp_path):
        source, plan = self.seed_store(tmp_path / "src")
        path = next(iter(sorted(source.root.glob("*/*.json"))))
        payload = json.loads(path.read_text())
        relabelled = path.parent / ("d" * 40 + ".json")
        relabelled.write_text(json.dumps(payload))
        merged = ResultStore(tmp_path / "dst")
        with pytest.warns(ResultStoreWarning, match="mislabelled"):
            report = merged.merge([source.root])
        assert report.sources[0].bad_entries == 1

    def test_stale_schema_entries_excluded(self, tmp_path):
        source, plan = self.seed_store(tmp_path / "src")
        path = next(iter(sorted(source.root.glob("*/*.json"))))
        payload = json.loads(path.read_text())
        payload["schema_version"] = -1
        path.write_text(json.dumps(payload))
        merged = ResultStore(tmp_path / "dst")
        report = merged.merge([source.root])
        assert report.sources[0].stale_schema == 1
        assert report.merged == len(plan) - 1

    def test_self_merge_rejected(self, tmp_path):
        store, _ = self.seed_store(tmp_path / "src")
        with pytest.raises(ValueError, match="itself"):
            store.merge([store.root])

    def test_report_round_trip(self, tmp_path):
        source, _ = self.seed_store(tmp_path / "src")
        merged = ResultStore(tmp_path / "dst")
        report = merged.merge([source.root])
        from repro.api import MergeReport

        assert MergeReport.from_dict(report.to_dict()).to_dict() == report.to_dict()


# ----------------------------------------------------------------------
# Streaming execution
# ----------------------------------------------------------------------
class TestExecutorStream:
    def test_stream_yields_every_unique_request(self, tmp_path):
        plan = small_plan()
        store = ResultStore(tmp_path / "store")
        events = list(SweepExecutor(store=store, resume=True).stream(plan))
        assert len(events) == len(plan)
        assert events[-1].done == len(plan)
        covered = sorted(i for e in events for i in e.plan_indices)
        assert covered == list(range(len(plan)))
        # Resumed stream: same events, now all from the store.
        resumed = list(SweepExecutor(store=store, resume=True).stream(plan))
        assert [e.source for e in resumed] == ["store"] * len(plan)

    def test_stream_matches_run_output(self):
        plan = small_plan(capacities=(2, 3))
        streamed = {}
        for event in SweepExecutor().stream(plan):
            for index in event.plan_indices:
                streamed[index] = event.evaluation
        ordered = [streamed[i].to_dict() for i in range(len(plan))]
        baseline = SweepExecutor().run(plan).to_dict()["evaluations"]
        assert ordered == baseline

    def test_early_close_aborts_but_keeps_store(self, tmp_path):
        plan = small_plan()
        store = ResultStore(tmp_path / "store")
        stream = SweepExecutor(store=store, resume=True).stream(plan)
        next(stream)
        stream.close()
        # The consumed point (at least) is durably persisted; a resumed run
        # completes the rest with byte-identical output.
        assert len(store) >= 1
        resumed = SweepExecutor(store=store, resume=True).run(plan)
        assert resumed.stats.store_hits >= 1
        assert json.dumps(resumed.to_dict(), sort_keys=True) == baseline_output(plan)

    def test_stream_propagates_errors_after_preceding_events(self):
        linear = get_mapper("linear")
        calls = {"n": 0}

        def flaky(factory, seed=0, context=None):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("boom")
            return linear.place(factory, seed=seed, context=context)

        plan = SweepPlan.from_grid(methods=("flaky-stream",), capacities=(2, 3, 4))
        register_mapper(flaky, name="flaky-stream")
        try:
            events = []
            with pytest.raises(RuntimeError, match="boom"):
                for event in SweepExecutor().stream(plan):
                    events.append(event)
            assert len(events) == 2
        finally:
            unregister_mapper("flaky-stream")


# ----------------------------------------------------------------------
# Wire decoding and shard jobs
# ----------------------------------------------------------------------
class TestDecodeShardSpec:
    def test_valid(self):
        spec = decode_shard_spec({"index": 1, "count": 3, "strategy": "strided"})
        assert spec == ShardSpec(1, 3, "strided")
        assert decode_shard_spec({"index": 0, "count": 1}).strategy == "contiguous"

    @pytest.mark.parametrize(
        "payload, field",
        [
            ([1, 3], "shard"),
            ({"count": 3}, "shard.index"),
            ({"index": 0}, "shard.count"),
            ({"index": 3, "count": 3}, "shard.index"),
            ({"index": True, "count": 3}, "shard.index"),
            ({"index": 0, "count": 3, "strategy": "zigzag"}, "shard.strategy"),
            ({"index": 0, "count": 3, "extra": 1}, "shard.extra"),
        ],
    )
    def test_invalid(self, payload, field):
        with pytest.raises(WireFormatError) as info:
            decode_shard_spec(payload)
        assert info.value.field == field


class TestShardJobs:
    def test_sharded_jobs_have_distinct_ids_and_run_subplans(self, tmp_path):
        plan = small_plan()
        manager = JobManager(store=tmp_path / "store")
        manager.start()
        try:
            jobs = []
            for spec in shard_specs(2, "strided"):
                job, coalesced = manager.submit(plan, shard=spec)
                assert not coalesced
                jobs.append(job)
            assert jobs[0].job_id != jobs[1].job_id
            assert jobs[0].total == len(ShardSpec(0, 2, "strided").plan_indices(len(plan)))
            # The same shard POSTed again coalesces while active or reruns.
            again, coalesced = manager.submit(plan, shard=ShardSpec(0, 2, "strided"))
            assert again.job_id == jobs[0].job_id
            assert manager.wait_idle(timeout=60)
        finally:
            manager.stop(timeout=10)
        for job in jobs:
            view = manager.job_view(job.job_id)
            assert view["state"] == "completed"
            assert view["shard"]["count"] == 2
            assert len(view["results"]) == view["total"]
        # Together the two shard jobs covered the plan: a resumed run on the
        # same store answers everything without evaluating.
        store = ResultStore(tmp_path / "store")
        assert run_output(store, plan) == baseline_output(plan)

    def test_empty_shard_rejected(self, tmp_path):
        plan = small_plan(capacities=(2,))  # 2 requests
        manager = JobManager(store=tmp_path / "store")
        # contiguous 0/3 of a 2-entry plan owns no positions.
        assert ShardSpec(0, 3, "contiguous").plan_indices(2) == ()
        with pytest.raises(ValueError, match="empty"):
            manager.submit(plan, shard=ShardSpec(0, 3, "contiguous"))

    def test_shard_job_record_recovers(self, tmp_path):
        plan = small_plan()
        manager = JobManager(store=tmp_path / "store")
        manager.start()
        try:
            job, _ = manager.submit(plan, shard=ShardSpec(1, 2, "strided"))
            assert manager.wait_idle(timeout=60)
        finally:
            manager.stop(timeout=10)
        fresh = JobManager(store=tmp_path / "store")
        assert fresh.recover() == []  # completed: visible, not re-enqueued
        view = fresh.job_view(job.job_id)
        assert view["state"] == "completed"
        assert view["shard"] == {"index": 1, "count": 2, "strategy": "strided"}


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
class TestShardCli:
    GRID = ["--methods", "linear,random", "--capacities", "2,3,4"]

    def test_full_cli_cycle_is_byte_identical(self, tmp_path, capsys):
        shards_dir = tmp_path / "shards"
        assert (
            main(
                ["sweep", "plan-split", *self.GRID, "--shards", "3",
                 "--strategy", "strided", "--out-dir", str(shards_dir), "--json"]
            )
            == 0
        )
        split = json.loads(capsys.readouterr().out)
        assert split["shards"] == 3 and len(split["files"]) == 3

        for index, spec_file in enumerate(split["files"]):
            code = main(
                ["sweep", "shard", "--spec", spec_file,
                 "--store", str(tmp_path / f"store-{index}"),
                 "--claim-dir", str(tmp_path / "claims"), "--json"]
            )
            assert code == 0
            report = json.loads(capsys.readouterr().out)
            assert report["schema"] == "repro-msfu-shard-run/v1"
            assert report["plan_fingerprint"] == split["plan_fingerprint"]

        assert (
            main(
                ["sweep", "merge",
                 *(str(tmp_path / f"store-{i}") for i in range(3)),
                 "--into", str(tmp_path / "merged"), "--json"]
            )
            == 0
        )
        merge = json.loads(capsys.readouterr().out)
        assert merge["merged"] == 6 and merge["conflicts"] == 0

        # The merged store reproduces the unsharded run byte for byte.
        assert main(
            ["sweep", "run", *self.GRID, "--store", str(tmp_path / "merged"),
             "--resume", "--json"]
        ) == 0
        merged_run = json.loads(capsys.readouterr().out)
        assert merged_run["stats"]["evaluations"] == 0
        assert main(
            ["sweep", "run", *self.GRID, "--store", str(tmp_path / "single"),
             "--json"]
        ) == 0
        single_run = json.loads(capsys.readouterr().out)
        assert merged_run["evaluations"] == single_run["evaluations"]

    def test_shard_by_index_flags_and_stream_output(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        code = main(
            ["sweep", "shard", *self.GRID, "--shard-index", "0",
             "--shard-count", "2", "--store", str(tmp_path / "store"),
             "--stream-output", str(stream), "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert len(lines) == len(report["own"])
        assert all(line["kind"] == "shard" for line in lines)
        assert sorted(line["plan_index"] for line in lines) == report["own"]

    def test_run_stream_output_sink(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        code = main(
            ["sweep", "run", *self.GRID, "--store", str(tmp_path / "store"),
             "--stream-output", str(stream), "--json"]
        )
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert len(lines) == 6
        assert lines[-1]["done"] == lines[-1]["total"] == 6
        streamed = {}
        for line in lines:
            for index in line["plan_indices"]:
                streamed[index] = line["evaluation"]
        assert [streamed[i] for i in range(6)] == result["evaluations"]

    def test_merge_conflict_exits_one(self, tmp_path, capsys):
        assert main(
            ["sweep", "run", *self.GRID, "--store", str(tmp_path / "src")]
        ) == 0
        assert main(
            ["sweep", "merge", str(tmp_path / "src"),
             "--into", str(tmp_path / "dst")]
        ) == 0
        capsys.readouterr()
        path = next(iter(sorted((tmp_path / "dst").glob("*/*.json"))))
        payload = json.loads(path.read_text())
        payload["result"]["latency"] = 10**9
        path.write_text(json.dumps(payload))
        assert main(
            ["sweep", "merge", str(tmp_path / "src"),
             "--into", str(tmp_path / "dst")]
        ) == 1
        err = capsys.readouterr().err
        assert "conflict" in err and "--prefer-newest" in err
        assert main(
            ["sweep", "merge", str(tmp_path / "src"),
             "--into", str(tmp_path / "dst"), "--prefer-newest"]
        ) == 0

    def test_shard_rejects_bad_invocations(self, tmp_path, capsys):
        # No spec and no shard indices.
        assert main(
            ["sweep", "shard", *self.GRID, "--store", str(tmp_path / "s")]
        ) == 2
        # Spec combined with explicit indices.
        shards_dir = tmp_path / "shards"
        assert main(
            ["sweep", "plan-split", *self.GRID, "--shards", "2",
             "--out-dir", str(shards_dir)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "shard", "--spec", str(shards_dir / "shard-00-of-2.json"),
             "--shard-index", "0", "--shard-count", "2",
             "--store", str(tmp_path / "s")]
        ) == 2
        # Empty shard (more shards than unique positions for this index).
        assert main(
            ["sweep", "shard", "--methods", "linear", "--capacities", "2",
             "--shard-index", "1", "--shard-count", "3",
             "--store", str(tmp_path / "s")]
        ) == 2
        # Over-split plan.
        assert main(
            ["sweep", "plan-split", "--methods", "linear", "--capacities", "2",
             "--shards", "4", "--out-dir", str(shards_dir)]
        ) == 2

    def test_status_json_uses_to_dict_fields(self, tmp_path, capsys):
        assert main(
            ["sweep", "run", *self.GRID, "--store", str(tmp_path / "store")]
        ) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "status", "--store", str(tmp_path / "store"), "--json"]
        ) == 0
        from repro.api import StoreStatus

        status = StoreStatus.from_dict(json.loads(capsys.readouterr().out))
        assert status.entries == 6
        assert status.corrupt == 0 and status.stale_schema == 0
