"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    build_dependency_dag,
    cnot,
    critical_path_length,
    emit_scaffold,
    h,
    inject_t,
    meas_x,
    parse_flat_assembly,
)
from repro.distillation import (
    FactorySpec,
    bravyi_haah_output_error,
    build_bravyi_haah_circuit,
    build_factory,
    module_gate_count,
    multi_level_output_errors,
    raw_state_usage,
    surface_code_logical_error,
)
from repro.graphs import count_edge_crossings, pearson_correlation
from repro.mapping import random_placement, row_major_placement
from repro.routing import Mesh, rectilinear_candidates, simulate

# Shared strategy: small Bravyi-Haah capacities keep the tests fast while
# exercising every structural branch of the generators.
capacities = st.integers(min_value=1, max_value=10)
small_errors = st.floats(min_value=1e-6, max_value=5e-2, allow_nan=False)


# ----------------------------------------------------------------------
# Distillation generators
# ----------------------------------------------------------------------
@given(k=capacities)
@settings(max_examples=20, deadline=None)
def test_bravyi_haah_gate_count_formula(k):
    circuit = build_bravyi_haah_circuit(k)
    assert len(circuit) == module_gate_count(k)
    assert circuit.num_qubits == 5 * k + 13


@given(k=capacities)
@settings(max_examples=20, deadline=None)
def test_bravyi_haah_consumes_every_raw_state_once(k):
    circuit = build_bravyi_haah_circuit(k)
    assert set(raw_state_usage(circuit)) == {1}


@given(
    k=st.integers(min_value=1, max_value=4),
    levels=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=12, deadline=None)
def test_factory_output_count_is_capacity(k, levels):
    factory = build_factory(FactorySpec(k=k, levels=levels))
    assert len(factory.output_qubits) == k**levels


@given(k=st.integers(min_value=2, max_value=4))
@settings(max_examples=8, deadline=None)
def test_factory_correlated_error_constraint(k):
    factory = build_factory(FactorySpec(k=k, levels=2))
    producer_of = {}
    for module in factory.rounds[0]:
        for qubit in module.out_qubits:
            producer_of[qubit] = module.module_index
    for module in factory.rounds[1]:
        producers = [producer_of[q] for q in module.raw_qubits]
        assert len(set(producers)) == len(producers)


# ----------------------------------------------------------------------
# Error model
# ----------------------------------------------------------------------
@given(k=capacities, error=small_errors)
@settings(max_examples=40, deadline=None)
def test_distillation_improves_below_threshold(k, error):
    # The protocol improves fidelity whenever eps < 1 / (1 + 3k); above that
    # pseudo-threshold the quadratic formula no longer guarantees a gain.
    output = bravyi_haah_output_error(k, error)
    if error < 0.5 / (1 + 3 * k):
        assert output < error
    assert output == (1 + 3 * k) * error**2


@given(k=capacities, error=small_errors, levels=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_multi_level_errors_monotonically_decrease(k, error, levels):
    errors = multi_level_output_errors(k, levels, error)
    previous = error
    for value in errors:
        assert value <= previous * (1 + 3 * k)
        previous = value


@given(
    distance=st.integers(min_value=3, max_value=25).filter(lambda d: d % 2 == 1),
    error=st.floats(min_value=1e-6, max_value=5e-3),
)
@settings(max_examples=40, deadline=None)
def test_surface_code_error_decreases_with_distance(distance, error):
    assert surface_code_logical_error(
        distance + 2, error
    ) <= surface_code_logical_error(
        distance, error
    )


# ----------------------------------------------------------------------
# Circuits: dependency DAG and Scaffold round-trip
# ----------------------------------------------------------------------
@st.composite
def random_gate_lists(draw):
    num_qubits = draw(st.integers(min_value=2, max_value=8))
    gates = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(st.sampled_from(["h", "cnot", "inject", "meas"]))
        a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        if kind == "h":
            gates.append(h(a))
        elif kind == "meas":
            gates.append(meas_x(a))
        else:
            b = draw(
                st.integers(min_value=0, max_value=num_qubits - 1).filter(
                    lambda q: q != a
                )
            )
            gates.append(cnot(a, b) if kind == "cnot" else inject_t(a, b))
    return num_qubits, gates


@given(data=random_gate_lists())
@settings(max_examples=30, deadline=None)
def test_dependency_dag_is_acyclic_and_ordered(data):
    _num_qubits, gates = data
    dag = build_dependency_dag(gates)
    for index, preds in enumerate(dag.predecessors):
        assert all(p < index for p in preds)


@given(data=random_gate_lists())
@settings(max_examples=30, deadline=None)
def test_critical_path_bounds(data):
    _num_qubits, gates = data
    critical = critical_path_length(gates)
    serial = sum(gate.duration() for gate in gates)
    longest_single = max(gate.duration() for gate in gates)
    assert longest_single <= critical <= serial


@given(data=random_gate_lists())
@settings(max_examples=30, deadline=None)
def test_scaffold_roundtrip_preserves_gates(data):
    num_qubits, gates = data
    circuit = Circuit("prop")
    circuit.add_register("q", num_qubits)
    circuit.extend(gates)
    parsed = parse_flat_assembly(emit_scaffold(circuit))
    assert [g.kind for g in parsed] == [g.kind for g in circuit]
    assert [g.qubits for g in parsed] == [g.qubits for g in circuit]


# ----------------------------------------------------------------------
# Placement and routing invariants
# ----------------------------------------------------------------------
@given(
    count=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_random_placement_is_injective(count, seed):
    placement = random_placement(list(range(count)), seed=seed)
    assert len(set(placement.positions.values())) == count
    placement.validate()


@given(
    source=st.tuples(st.integers(0, 5), st.integers(0, 5)),
    target=st.tuples(st.integers(0, 5), st.integers(0, 5)),
)
@settings(max_examples=50, deadline=None)
def test_rectilinear_candidates_are_connected_paths(source, target):
    if source == target:
        return
    mesh = Mesh.from_placement({0: source, 1: target}, width=6, height=6)
    for path in rectilinear_candidates(mesh, mesh.qubit_cell(0), mesh.qubit_cell(1)):
        assert path[0] == mesh.qubit_cell(0)
        assert path[-1] == mesh.qubit_cell(1)
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
        assert all(mesh.in_bounds(cell) for cell in path)


@given(data=random_gate_lists(), seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulated_latency_never_below_critical_path(data, seed):
    num_qubits, gates = data
    placement = random_placement(list(range(num_qubits)), seed=seed)
    result = simulate(gates, placement)
    assert result.latency >= critical_path_length(gates)
    assert result.volume == result.latency * placement.area


@given(
    # Keep magnitudes out of the deep-underflow regime: deviations around
    # 1e-162 square to sub-denormal variances that round to exactly 0.0,
    # turning a non-constant sample into the degenerate zero-variance case.
    xs=st.lists(
        st.floats(min_value=-100, max_value=100).filter(
            lambda value: value == 0.0 or abs(value) >= 1e-6
        ),
        min_size=3,
        max_size=20,
    ),
    scale=st.floats(min_value=0.1, max_value=5.0),
    offset=st.floats(min_value=-10, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_pearson_correlation_of_affine_transform_is_one(xs, scale, offset):
    if len(set(xs)) < 2:
        return
    ys = [scale * x + offset for x in xs]
    if len(set(ys)) < 2:
        # scale * x can round away against the offset (e.g. 5 + 1e-300),
        # leaving a constant sample whose correlation is defined as 0.
        return
    assert abs(pearson_correlation(xs, ys) - 1.0) < 1e-6


@given(count=st.integers(min_value=2, max_value=30))
@settings(max_examples=20, deadline=None)
def test_row_major_placement_has_no_crossings_for_path_graph(count):
    # A path graph placed in row-major order on a single row never crosses.
    import networkx as nx

    graph = nx.path_graph(count)
    placement = row_major_placement(list(range(count)), width=count, height=1)
    assert count_edge_crossings(graph, placement.as_float_positions()) == 0
