"""Tests for the sweep service (:mod:`repro.service`).

The acceptance contracts under test:

* **in-flight coalescing** — concurrent identical ``/v1/evaluate`` requests
  perform exactly one evaluation (singleflight by request fingerprint), and
  two concurrent identical sweep POSTs land on one job;
* **ETag revalidation** — the fingerprint is the ETag; ``If-None-Match``
  with a matching fingerprint is answered ``304`` with *zero* store reads;
* **crash resume** — a server killed mid-job and restarted on the same
  store finishes the job re-executing only the missing points, with
  results byte-identical to an uninterrupted run.

HTTP-level tests run a real :class:`ThreadingHTTPServer` on an ephemeral
port and speak ``urllib``; service-core tests drive :class:`SweepService`
directly (it is deliberately HTTP-free).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    EvaluationRequest,
    FunctionMapper,
    ResultStore,
    SweepExecutor,
    SweepPlan,
    get_mapper,
    register_mapper,
    unregister_mapper,
)
from repro.service import (
    SERVICE_VERSION,
    JobManager,
    JobState,
    SweepService,
    WireFormatError,
    create_server,
    plan_fingerprint,
)
from repro.service.jobs import JOB_RECORD_SCHEMA, JOBS_DIRNAME

METHODS = ("linear", "graph_partition")
CAPACITIES = (2, 3)
SLOW_MAPPER = "slow_linear"
SLOW_SECONDS = 0.25


def a_request(**overrides) -> EvaluationRequest:
    payload = dict(method="linear", capacity=2)
    payload.update(overrides)
    return EvaluationRequest(**payload)


def small_plan() -> SweepPlan:
    return SweepPlan.from_grid(methods=METHODS, capacities=CAPACITIES)


@pytest.fixture
def slow_mapper():
    """A registered mapper that sleeps, widening every race window."""

    def slow_place(factory, *, seed=0, context=None):
        time.sleep(SLOW_SECONDS)
        return get_mapper("linear").place(factory, seed=seed, context=context)

    register_mapper(FunctionMapper(SLOW_MAPPER, slow_place), overwrite=True)
    try:
        yield SLOW_MAPPER
    finally:
        unregister_mapper(SLOW_MAPPER)


@pytest.fixture
def service(tmp_path):
    svc = SweepService(store=tmp_path / "store")
    svc.start()
    try:
        yield svc
    finally:
        svc.close()


@pytest.fixture
def base_url(service):
    """The service behind a live HTTP server on an ephemeral port."""
    server = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{server.server_address[0]}:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def http(method, url, payload=None, headers=None):
    """One HTTP exchange -> (status, headers, decoded JSON body or None)."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, headers=dict(headers or {}), method=method
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            body = response.read()
            return (
                response.status,
                dict(response.headers),
                json.loads(body) if body else None,
            )
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, dict(error.headers), json.loads(body) if body else None


def wait_for_job(base, job_id, timeout=90.0):
    """Poll ``GET /v1/jobs/<id>`` until the job leaves the active states."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, view = http("GET", f"{base}/v1/jobs/{job_id}")
        assert status == 200
        if view["state"] not in ("queued", "running"):
            return view
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


# ----------------------------------------------------------------------
# Service core: evaluate, ETag, coalescing
# ----------------------------------------------------------------------
class TestEvaluate:
    def test_cold_then_warm_sources(self, service):
        data = a_request().to_dict()
        cold = service.evaluate(data)
        assert cold.source == "evaluated"
        assert cold.payload["method"] == "linear"
        warm = service.evaluate(data)
        assert warm.source == "store"
        assert warm.payload == cold.payload
        assert warm.fingerprint == cold.fingerprint
        assert service.pipeline.stats.evaluations == 1

    def test_etag_revalidation_reads_nothing(self, service):
        data = a_request().to_dict()
        cold = service.evaluate(data)
        before = service.store.counters()
        outcome = service.evaluate(data, if_none_match=cold.etag)
        assert outcome.not_modified
        assert outcome.payload is None
        assert outcome.fingerprint == cold.fingerprint
        # The 304 path touches neither the store nor the pipeline.
        assert service.store.counters() == before
        assert service.pipeline.stats.evaluations == 1
        assert service.counters.not_modified == 1

    def test_etag_header_forms(self, service):
        data = a_request().to_dict()
        fingerprint = service.evaluate(data).fingerprint
        for header in (
            f'"{fingerprint}"',
            fingerprint,
            f'W/"{fingerprint}"',
            f'"{"0" * 40}", "{fingerprint}"',
            "*",
        ):
            assert service.evaluate(data, if_none_match=header).not_modified
        assert not service.evaluate(data, if_none_match='"0" * 40').not_modified

    def test_stale_etag_is_answered_in_full(self, service):
        data = a_request().to_dict()
        service.evaluate(data)
        outcome = service.evaluate(data, if_none_match='"' + "0" * 40 + '"')
        assert not outcome.not_modified
        assert outcome.payload is not None

    def test_concurrent_identical_requests_coalesce(self, service, slow_mapper):
        data = a_request(method=slow_mapper).to_dict()
        herd = 4
        barrier = threading.Barrier(herd)

        def call():
            barrier.wait()
            return service.evaluate(data)

        with ThreadPoolExecutor(max_workers=herd) as pool:
            outcomes = list(pool.map(lambda _: call(), range(herd)))

        sources = [outcome.source for outcome in outcomes]
        # Exactly one evaluation happened; everyone else rode along
        # (coalesced into the flight, or — if they arrived a beat late —
        # answered from the store the leader just populated).
        assert service.pipeline.stats.evaluations == 1
        assert sources.count("evaluated") == 1
        assert all(source in ("evaluated", "coalesced", "store") for source in sources)
        assert sources.count("coalesced") == service.counters.coalesced_hits
        assert service.counters.coalesced_hits >= 1
        payloads = [json.dumps(o.payload, sort_keys=True) for o in outcomes]
        assert len(set(payloads)) == 1

    def test_unknown_mapper_is_wire_error_listing_registered(self, service):
        with pytest.raises(WireFormatError) as excinfo:
            service.evaluate(a_request(method="nope").to_dict())
        message = str(excinfo.value)
        assert excinfo.value.field == "method"
        assert "'nope'" in message and "linear" in message

    def test_malformed_request_is_wire_error(self, service):
        with pytest.raises(WireFormatError) as excinfo:
            service.evaluate({"method": "linear"})
        assert excinfo.value.field == "capacity"


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class TestHttpEndpoints:
    def test_healthz(self, base_url):
        status, _, body = http("GET", f"{base_url}/healthz")
        assert status == 200
        assert body == {"ok": True, "service": SERVICE_VERSION}

    def test_unknown_endpoint_404_lists_routes(self, base_url):
        status, _, body = http("GET", f"{base_url}/v1/nope")
        assert status == 404
        assert "POST /v1/evaluate" in body["error"]["endpoints"]

    def test_unknown_job_404(self, base_url):
        status, _, body = http("GET", f"{base_url}/v1/jobs/{'0' * 40}")
        assert status == 404
        assert "unknown job" in body["error"]["message"]

    def test_evaluate_roundtrip_and_304(self, base_url, service):
        data = a_request().to_dict()
        status, headers, body = http("POST", f"{base_url}/v1/evaluate", data)
        assert status == 200
        assert body["source"] == "evaluated"
        assert body["result"]["method"] == "linear"
        etag = headers["ETag"]
        assert etag == f'"{body["fingerprint"]}"'

        status, headers, body = http(
            "POST", f"{base_url}/v1/evaluate", data, {"If-None-Match": etag}
        )
        assert status == 304
        assert body is None
        assert headers["ETag"] == etag
        assert service.counters.not_modified == 1

        status, _, body = http("POST", f"{base_url}/v1/evaluate", data)
        assert status == 200
        assert body["source"] == "store"

    def test_malformed_body_is_400_naming_the_field(self, base_url):
        status, _, body = http(
            "POST", f"{base_url}/v1/evaluate", {"method": "linear"}
        )
        assert status == 400
        assert body["error"]["field"] == "capacity"
        assert "capacity" in body["error"]["message"]

    def test_unknown_mapper_is_400_listing_registered(self, base_url):
        status, _, body = http(
            "POST", f"{base_url}/v1/evaluate", a_request(method="typo").to_dict()
        )
        assert status == 400
        assert "'typo'" in body["error"]["message"]
        assert "linear" in body["error"]["message"]

    def test_empty_body_is_400(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/v1/evaluate", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_invalid_json_body_is_400(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/v1/evaluate", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_status_shape(self, base_url):
        http("GET", f"{base_url}/healthz")
        status, _, body = http("GET", f"{base_url}/v1/status")
        assert status == 200
        assert body["service"] == SERVICE_VERSION
        assert body["workers"] == 1
        assert set(body["store_counters"]) == {
            "hits",
            "misses",
            "puts",
            "corrupt_skipped",
        }
        assert body["server"]["requests"] >= 1
        endpoint = body["server"]["endpoints"]["GET /healthz"]
        assert endpoint["requests"] == 1
        assert endpoint["errors"] == 0
        assert endpoint["mean_latency_ms"] >= 0
        assert body["jobs"] == {
            "queued": 0,
            "running": 0,
            "completed": 0,
            "failed": 0,
        }
        assert body["in_flight"] == 0


class TestHttpSweeps:
    def test_sweep_job_lifecycle(self, base_url, service):
        plan = small_plan()
        status, headers, accepted = http(
            "POST", f"{base_url}/v1/sweeps", plan.to_dict()
        )
        assert status == 202
        assert accepted["total"] == len(plan)
        assert not accepted["coalesced"]
        assert headers["Location"] == f"/v1/jobs/{accepted['job_id']}"

        view = wait_for_job(base_url, accepted["job_id"])
        assert view["state"] == "completed"
        assert view["completed"] == view["total"] == len(plan)
        assert view["error"] is None
        stats = view["stats"]
        assert stats["requests"] == len(plan)
        assert stats["requests"] == (
            stats["duplicate_hits"] + stats["store_hits"] + stats["evaluations"]
        )
        assert [entry["index"] for entry in view["results"]] == list(
            range(len(plan))
        )
        methods = {entry["result"]["method"] for entry in view["results"]}
        assert methods == set(METHODS)
        # Every point landed in the shared store as it completed.
        assert len(service.store) == len(plan)

    def test_repeat_post_after_completion_is_all_store_hits(self, base_url):
        plan = small_plan()
        _, _, first = http("POST", f"{base_url}/v1/sweeps", plan.to_dict())
        first_view = wait_for_job(base_url, first["job_id"])

        _, _, again = http("POST", f"{base_url}/v1/sweeps", plan.to_dict())
        assert again["job_id"] == first["job_id"]  # same plan, same identity
        assert not again["coalesced"]  # a fresh run, not a join
        second_view = wait_for_job(base_url, again["job_id"])
        assert second_view["stats"]["evaluations"] == 0
        assert second_view["stats"]["store_hits"] == len(plan)
        assert json.dumps(
            [e["result"] for e in second_view["results"]], sort_keys=True
        ) == json.dumps([e["result"] for e in first_view["results"]], sort_keys=True)

    def test_concurrent_identical_sweep_posts_coalesce(
        self, base_url, service, slow_mapper
    ):
        plan = SweepPlan.from_grid(methods=(slow_mapper,), capacities=(2, 3))
        barrier = threading.Barrier(2)

        def post(_):
            barrier.wait()
            return http("POST", f"{base_url}/v1/sweeps", plan.to_dict())

        with ThreadPoolExecutor(max_workers=2) as pool:
            responses = list(pool.map(post, range(2)))

        assert [status for status, _, _ in responses] == [202, 202]
        bodies = [body for _, _, body in responses]
        assert bodies[0]["job_id"] == bodies[1]["job_id"]
        assert sorted(body["coalesced"] for body in bodies) == [False, True]
        assert service.counters.coalesced_hits == 1

        view = wait_for_job(base_url, bodies[0]["job_id"])
        assert view["state"] == "completed"
        assert view["submissions"] == 2
        # One job ran; the plan's evaluations happened exactly once.
        assert view["stats"]["evaluations"] == len(plan)
        assert service.pipeline.stats.evaluations == 0  # jobs bypass it
        assert len(service.store) == len(plan)

    def test_sharded_posts_cover_the_plan_under_distinct_job_ids(
        self, base_url, service
    ):
        plan = small_plan()
        bodies = []
        for index in range(2):
            payload = dict(plan.to_dict())
            payload["shard"] = {"index": index, "count": 2, "strategy": "strided"}
            status, _, body = http("POST", f"{base_url}/v1/sweeps", payload)
            assert status == 202
            assert body["shard"]["index"] == index
            bodies.append(body)
        assert bodies[0]["job_id"] != bodies[1]["job_id"]
        assert sum(body["total"] for body in bodies) == len(plan)
        for body in bodies:
            view = wait_for_job(base_url, body["job_id"])
            assert view["state"] == "completed"
            assert view["shard"]["count"] == 2
        # The two shard jobs together covered every plan point.
        assert len(service.store) == len(plan)

    def test_malformed_shard_is_400_naming_the_field(self, base_url, service):
        payload = dict(small_plan().to_dict())
        payload["shard"] = {"index": 5, "count": 2}
        status, _, body = http("POST", f"{base_url}/v1/sweeps", payload)
        assert status == 400
        assert body["error"]["field"] == "shard.index"
        assert service.jobs.jobs_in_flight() == 0

    def test_sweep_with_unknown_mapper_is_400_before_queueing(
        self, base_url, service
    ):
        plan = SweepPlan.from_grid(methods=("typo",), capacities=(2,))
        status, _, body = http("POST", f"{base_url}/v1/sweeps", plan.to_dict())
        assert status == 400
        assert "'typo'" in body["error"]["message"]
        assert service.jobs.jobs_in_flight() == 0

    def test_malformed_plan_is_400_naming_the_request(self, base_url):
        payload = {"requests": [a_request().to_dict(), {"method": "linear"}]}
        status, _, body = http("POST", f"{base_url}/v1/sweeps", payload)
        assert status == 400
        assert body["error"]["field"] == "requests[1].capacity"


# ----------------------------------------------------------------------
# Crash resume: the acceptance criterion, end to end
# ----------------------------------------------------------------------
class TestCrashResume:
    def test_restarted_service_finishes_job_reexecuting_only_missing_points(
        self, tmp_path
    ):
        plan = small_plan()

        # The reference: an uninterrupted run on its own store.
        reference = SweepExecutor(store=tmp_path / "reference").run(plan)
        reference_payloads = [e.to_dict() for e in reference.evaluations]

        # The crash site: a store holding only part of the plan's points,
        # plus the job record a dying server left behind in state=running.
        crashed = ResultStore(tmp_path / "crashed")
        partial = SweepPlan.from_requests(list(plan)[:2])
        SweepExecutor(store=crashed).run(partial)
        assert len(crashed) == 2

        manager = JobManager(crashed)  # records the job; never started
        job, coalesced = manager.submit(plan)
        assert not coalesced
        record_path = crashed.root / JOBS_DIRNAME / f"{job.job_id}.json"
        record = json.loads(record_path.read_text())
        assert record["schema"] == JOB_RECORD_SCHEMA
        record["state"] = JobState.RUNNING.value
        record["completed"] = 1
        record_path.write_text(json.dumps(record))

        # Restart: recovery re-enqueues the unfinished job.
        service = SweepService(store=crashed)
        assert service.start() == 1
        try:
            assert service.jobs.wait_idle(timeout=90)
            view = service.job_status(job.job_id)
        finally:
            service.close()

        assert view["state"] == "completed"
        assert view["completed"] == view["total"] == len(plan)
        # Only the two missing points re-executed; the rest came from disk.
        assert view["stats"]["store_hits"] == 2
        assert view["stats"]["evaluations"] == 2
        # Byte-identical to the uninterrupted run.
        assert json.dumps(
            [entry["result"] for entry in view["results"]], sort_keys=True
        ) == json.dumps(reference_payloads, sort_keys=True)

    def test_completed_jobs_recover_for_inspection_without_requeueing(
        self, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        plan = SweepPlan.from_grid(methods=("linear",), capacities=(2,))

        first = SweepService(store=store)
        assert first.start() == 0
        job, _ = first.jobs.submit(plan)
        assert first.jobs.wait_idle(timeout=90)
        first.close()

        second = SweepService(store=store)
        assert second.start() == 0  # nothing unfinished to requeue
        try:
            view = second.job_status(job.job_id)
            assert view is not None
            assert view["state"] == "completed"
            # Results backfill from the store for the recovered record.
            assert [e["index"] for e in view["results"]] == [0]
            assert view["results"][0]["result"]["method"] == "linear"
        finally:
            second.close()

    def test_corrupt_job_record_is_warned_and_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        jobs_dir = store.root / JOBS_DIRNAME
        jobs_dir.mkdir(parents=True)
        (jobs_dir / "deadbeef.json").write_text("{not json")
        service = SweepService(store=store)
        with pytest.warns(Warning, match="unreadable job record"):
            assert service.start() == 0
        service.close()

    def test_job_records_are_invisible_to_store_maintenance(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        service = SweepService(store=store)
        service.start()
        try:
            plan = SweepPlan.from_grid(methods=("linear",), capacities=(2,))
            service.jobs.submit(plan)
            assert service.jobs.wait_idle(timeout=90)
        finally:
            service.close()
        # The jobs/ directory must not read as store entries.
        assert len(store) == 1
        status = store.status()
        assert status["entries"] == 1
        report = store.gc(keep_days=0, dry_run=True)
        assert report.kept + len(report.removed) == 1


# ----------------------------------------------------------------------
# Job identity
# ----------------------------------------------------------------------
class TestPlanFingerprint:
    def test_identical_plans_identical_ids(self):
        assert plan_fingerprint(small_plan()) == plan_fingerprint(small_plan())

    def test_order_and_content_change_the_id(self):
        plan = small_plan()
        reordered = SweepPlan.from_requests(list(plan)[::-1])
        shorter = SweepPlan.from_requests(list(plan)[:-1])
        assert plan_fingerprint(plan) != plan_fingerprint(reordered)
        assert plan_fingerprint(plan) != plan_fingerprint(shorter)

    def test_default_sim_config_resolution_matches_store_identity(self):
        from repro.routing.simulator import SimulatorConfig

        explicit = SweepPlan.from_requests(
            [a_request(sim_config=SimulatorConfig())]
        )
        implicit = SweepPlan.from_requests([a_request()])
        assert plan_fingerprint(implicit) == plan_fingerprint(explicit)
        assert plan_fingerprint(
            implicit, SimulatorConfig(max_candidates=3)
        ) != plan_fingerprint(implicit)
