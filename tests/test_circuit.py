"""Unit tests for the circuit container (repro.circuits.circuit)."""

import pytest

from repro.circuits import (
    Circuit,
    GateKind,
    cnot,
    concatenate,
    cxx,
    h,
    inject_t,
    meas_x,
)


def small_circuit():
    circuit = Circuit("small")
    a = circuit.add_register("a", 3)
    b = circuit.add_register("b", 2)
    circuit.append(h(a[0]))
    circuit.append(cnot(a[0], a[1]))
    circuit.append(inject_t(b[0], a[2]))
    circuit.append(cxx(a[0], [a[1], a[2]]))
    circuit.append(meas_x(a[1]))
    return circuit


class TestRegisters:
    def test_registers_are_contiguous(self):
        circuit = Circuit()
        a = circuit.add_register("a", 3)
        b = circuit.add_register("b", 2)
        assert a.qubits == (0, 1, 2)
        assert b.qubits == (3, 4)
        assert circuit.num_qubits == 5

    def test_register_indexing_and_iteration(self):
        circuit = Circuit()
        a = circuit.add_register("a", 4)
        assert a[0] == 0
        assert a[-1] == 3
        assert list(a) == [0, 1, 2, 3]
        assert len(a) == 4

    def test_register_index_out_of_range(self):
        circuit = Circuit()
        a = circuit.add_register("a", 2)
        with pytest.raises(IndexError):
            a[2]

    def test_duplicate_register_name_rejected(self):
        circuit = Circuit()
        circuit.add_register("a", 2)
        with pytest.raises(ValueError):
            circuit.add_register("a", 3)

    def test_non_positive_register_size_rejected(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.add_register("a", 0)

    def test_qubit_name_resolution(self):
        circuit = Circuit()
        circuit.add_register("raw", 2)
        circuit.add_register("anc", 2)
        assert circuit.qubit_name(0) == "raw[0]"
        assert circuit.qubit_name(3) == "anc[1]"

    def test_register_lookup(self):
        circuit = Circuit()
        circuit.add_register("raw", 2)
        assert circuit.register("raw").size == 2
        with pytest.raises(KeyError):
            circuit.register("missing")


class TestGateManagement:
    def test_append_validates_qubits(self):
        circuit = Circuit()
        circuit.add_register("a", 2)
        with pytest.raises(ValueError):
            circuit.append(cnot(0, 5))

    def test_len_and_iteration(self):
        circuit = small_circuit()
        assert len(circuit) == 5
        assert len(list(circuit)) == 5
        assert circuit[0].kind is GateKind.H

    def test_extend(self):
        circuit = Circuit()
        circuit.add_register("a", 2)
        circuit.extend([h(0), cnot(0, 1)])
        assert len(circuit) == 2

    def test_gates_tuple_is_immutable_snapshot(self):
        circuit = small_circuit()
        snapshot = circuit.gates
        circuit.append(h(0))
        assert len(snapshot) == 5
        assert len(circuit.gates) == 6


class TestStatistics:
    def test_gate_counts(self):
        circuit = small_circuit()
        counts = circuit.gate_counts()
        assert counts[GateKind.H] == 1
        assert counts[GateKind.CNOT] == 1
        assert counts[GateKind.CXX] == 1

    def test_count_single_kind(self):
        assert small_circuit().count(GateKind.MEAS_X) == 1

    def test_t_count_counts_injections(self):
        circuit = small_circuit()
        assert circuit.t_count == 1

    def test_braided_gate_count(self):
        assert small_circuit().braided_gate_count == 3

    def test_total_duration_is_sum(self):
        circuit = small_circuit()
        assert circuit.total_duration() == sum(g.duration() for g in circuit)

    def test_used_qubits(self):
        circuit = small_circuit()
        assert circuit.used_qubits() == (0, 1, 2, 3)


class TestTransformations:
    def test_remap_qubits(self):
        circuit = small_circuit()
        remapped = circuit.remap_qubits({0: 7})
        assert remapped[1].qubits == (7, 1)
        assert remapped.num_qubits >= 8

    def test_subcircuit_preserves_qubit_space(self):
        circuit = small_circuit()
        sub = circuit.subcircuit([1, 3])
        assert len(sub) == 2
        assert sub.num_qubits == circuit.num_qubits

    def test_with_gates_keeps_registers(self):
        circuit = small_circuit()
        new = circuit.with_gates([h(0)])
        assert new.num_qubits == circuit.num_qubits
        assert new.register("a").size == 3
        assert len(new) == 1


class TestConcatenate:
    def test_concatenate_offsets_qubits(self):
        first = Circuit("one")
        first.add_register("q", 2)
        first.append(cnot(0, 1))
        second = Circuit("two")
        second.add_register("q", 3)
        second.append(cnot(0, 2))

        combined = concatenate([first, second])
        assert combined.num_qubits == 5
        assert combined.offsets == [0, 2]
        assert combined[0].qubits == (0, 1)
        assert combined[1].qubits == (2, 4)

    def test_concatenate_register_names_unique(self):
        first = Circuit("one")
        first.add_register("q", 1)
        second = Circuit("two")
        second.add_register("q", 1)
        combined = concatenate([first, second])
        assert set(combined.registers) == {"c0_q", "c1_q"}
