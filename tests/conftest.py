"""Shared fixtures for the test-suite.

Factory construction and simulation are deterministic, so expensive objects
(factories, placements) are session-scoped to keep the suite fast.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    """Options shared by the differential fuzz harnesses
    (test_simulator_fuzz.py, test_metrics_fuzz.py)."""
    parser.addoption(
        "--fuzz-iterations",
        type=int,
        default=10,
        help=(
            "number of randomized differential-fuzz trials to run "
            "(tier-1 default: 10; the nightly CI job runs hundreds)"
        ),
    )
    parser.addoption(
        "--fuzz-seeds",
        default=None,
        help=(
            "comma-separated trial seeds to replay instead of the "
            "sequential corpus (one-line repro of a reported failure)"
        ),
    )

from repro.distillation import (
    ReusePolicy,
    build_single_level_factory,
    build_two_level_factory,
)
from repro.graphs import interaction_graph
from repro.mapping import linear_factory_placement, random_circuit_placement


@pytest.fixture(scope="session")
def single_level_k4():
    """A single-level capacity-4 factory."""
    return build_single_level_factory(4)


@pytest.fixture(scope="session")
def single_level_k8():
    """A single-level capacity-8 factory (the Fig. 5 circuit)."""
    return build_single_level_factory(8)


@pytest.fixture(scope="session")
def two_level_cap4():
    """A two-level capacity-4 factory (k=2), no reuse, with barriers."""
    return build_two_level_factory(4, barriers_between_rounds=True)


@pytest.fixture(scope="session")
def two_level_cap4_reuse():
    """A two-level capacity-4 factory with qubit reuse."""
    return build_two_level_factory(
        4, reuse_policy=ReusePolicy.REUSE, barriers_between_rounds=True
    )


@pytest.fixture(scope="session")
def two_level_cap16():
    """A two-level capacity-16 factory (k=4)."""
    return build_two_level_factory(16, barriers_between_rounds=True)


@pytest.fixture(scope="session")
def k4_interaction_graph(single_level_k4):
    """Interaction graph of the single-level capacity-4 factory."""
    return interaction_graph(single_level_k4.circuit)


@pytest.fixture(scope="session")
def k4_linear_placement(single_level_k4):
    """Linear placement of the single-level capacity-4 factory."""
    return linear_factory_placement(single_level_k4)


@pytest.fixture(scope="session")
def k4_random_placement(single_level_k4):
    """Random placement of the single-level capacity-4 factory."""
    return random_circuit_placement(single_level_k4.circuit, seed=11)
