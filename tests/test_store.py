"""Tests for the persistent result store and resumable sweep execution.

The contracts under test:

* :func:`repro.api.request_fingerprint` is a stable, schema-versioned
  content address — equal requests collide, different requests (and
  different schema versions) do not;
* :class:`repro.api.ResultStore` round-trips evaluations exactly, treats
  corrupt payloads as warned misses (never crashes, never wrong answers),
  expires only entries older than ``keep_days`` under ``gc``, and cleanly
  invalidates old entries on a schema bump;
* a :class:`~repro.api.SweepExecutor` run killed mid-plan and re-run with
  ``resume=True`` produces output **byte-identical** to an uninterrupted
  run while re-executing only the missing requests, with exact
  ``store_hits`` accounting;
* :class:`~repro.routing.simulator.SimulationCache` persistence reuses the
  same fingerprint discipline.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import (
    EvaluationRequest,
    Pipeline,
    ResultStore,
    ResultStoreWarning,
    SweepExecutor,
    SweepPlan,
    register_mapper,
    request_fingerprint,
    unregister_mapper,
)
from repro.api.store import STORE_SCHEMA_VERSION, store_metadata
from repro.routing.simulator import (
    SimulationCache,
    SimulationCacheWarning,
    SimulatorConfig,
    simulation_fingerprint,
)

METHODS = ("linear", "graph_partition")
CAPACITIES = (2, 3)


def small_plan() -> SweepPlan:
    return SweepPlan.from_grid(methods=METHODS, capacities=CAPACITIES)


def a_request(**overrides) -> EvaluationRequest:
    payload = dict(method="linear", capacity=2)
    payload.update(overrides)
    return EvaluationRequest(**payload)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestRequestFingerprint:
    def test_equal_requests_equal_fingerprints(self):
        assert request_fingerprint(a_request()) == request_fingerprint(a_request())

    def test_distinct_requests_distinct_fingerprints(self):
        fingerprints = {
            request_fingerprint(a_request()),
            request_fingerprint(a_request(capacity=3)),
            request_fingerprint(a_request(method="graph_partition")),
            request_fingerprint(a_request(seed=1)),
            request_fingerprint(a_request(reuse=True)),
            request_fingerprint(
                a_request(sim_config=SimulatorConfig(max_candidates=3))
            ),
        }
        assert len(fingerprints) == 6

    def test_schema_version_changes_fingerprint(self):
        request = a_request()
        assert request_fingerprint(request, STORE_SCHEMA_VERSION) != (
            request_fingerprint(request, STORE_SCHEMA_VERSION + 1)
        )

    def test_fingerprint_is_hex_and_fixed_width(self):
        fingerprint = request_fingerprint(a_request())
        assert len(fingerprint) == 40
        int(fingerprint, 16)  # must be valid hex


# ----------------------------------------------------------------------
# Store round trips and counters
# ----------------------------------------------------------------------
class TestResultStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        evaluation = Pipeline().evaluate(request)
        fingerprint = store.put(request, evaluation, wall_seconds=0.25)
        assert store.path_for(fingerprint).is_file()
        restored = store.get(request)
        assert restored == evaluation
        assert (store.hits, store.misses, store.puts) == (1, 0, 1)

    def test_miss_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get(a_request()) is None
        assert store.misses == 1
        assert len(store) == 0

    def test_contains_does_not_move_counters(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        assert not store.contains(request)
        store.put(request, Pipeline().evaluate(request))
        assert store.contains(request)
        assert (store.hits, store.misses) == (0, 0)

    def test_payload_carries_provenance_metadata(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        fingerprint = store.put(request, Pipeline().evaluate(request), 1.5)
        payload = json.loads(store.path_for(fingerprint).read_text())
        assert payload["schema_version"] == STORE_SCHEMA_VERSION
        assert payload["fingerprint"] == fingerprint
        assert payload["request"]["method"] == "linear"
        meta = payload["meta"]
        assert meta["wall_seconds"] == 1.5
        assert meta["python_version"]
        assert meta["platform"]
        assert meta["cpu_count"] >= 1
        assert meta["created_unix"] > 0
        # git_sha may be None outside a checkout but the key must exist.
        assert "git_sha" in meta

    def test_store_metadata_helper_shape(self):
        meta = store_metadata(wall_seconds=2.0)
        assert set(meta) == {
            "git_sha",
            "python_version",
            "platform",
            "cpu_count",
            "wall_seconds",
            "created_unix",
            "created_utc",
        }


# ----------------------------------------------------------------------
# Corruption: skipped with a warning, never a crash or a wrong answer
# ----------------------------------------------------------------------
class TestStoreCorruption:
    def _stored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        fingerprint = store.put(request, Pipeline().evaluate(request))
        return store, request, store.path_for(fingerprint)

    def test_truncated_payload_is_warned_miss(self, tmp_path):
        store, request, path = self._stored(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None
        assert store.corrupt_skipped == 1

    def test_garbage_bytes_are_warned_miss(self, tmp_path):
        store, request, path = self._stored(tmp_path)
        path.write_bytes(b"\x00\xff garbage \x80")
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None

    def test_valid_json_wrong_fingerprint_is_warned_miss(self, tmp_path):
        store, request, path = self._stored(tmp_path)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 40
        path.write_text(json.dumps(payload))
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None

    def test_undecodable_result_is_warned_miss(self, tmp_path):
        store, request, path = self._stored(tmp_path)
        payload = json.loads(path.read_text())
        payload["result"] = {"latency": "not-an-evaluation"}
        path.write_text(json.dumps(payload))
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None

    def test_non_object_payload_is_warned_miss(self, tmp_path):
        store, request, path = self._stored(tmp_path)
        path.write_text('["a", "list"]')
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None

    def test_non_dict_result_field_is_warned_miss(self, tmp_path):
        """A correctly addressed entry whose result is not an object."""
        store, request, path = self._stored(tmp_path)
        payload = json.loads(path.read_text())
        payload["result"] = "not a dict"
        path.write_text(json.dumps(payload))
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None

    def test_corrupt_entry_is_recomputed_through_pipeline(self, tmp_path):
        """A pipeline with a corrupt store recomputes and heals the entry."""
        store = ResultStore(tmp_path / "store")
        request = a_request()
        reference = Pipeline(store=store).evaluate(request)
        [(path, _)] = list(store.entries())  # the entry the pipeline wrote
        path.write_text("{ truncated")
        pipeline = Pipeline(store=store)
        with pytest.warns(ResultStoreWarning):
            recomputed = pipeline.evaluate(request)
        assert recomputed == reference
        assert pipeline.stats.store_hits == 0
        # The put after recomputation repaired the entry.
        healed = Pipeline(store=store)
        assert healed.evaluate(request) == reference
        assert healed.stats.store_hits == 1

    def test_status_counts_corrupt_entries(self, tmp_path):
        store, _, path = self._stored(tmp_path)
        path.write_text("not json")
        status = store.status()
        assert status["entries"] == 1
        assert status["corrupt"] == 1
        # Maintenance scans report corruption without moving the lookup
        # counters (status/gc are not lookups).
        store.gc(keep_days=9999, dry_run=True)
        assert store.corrupt_skipped == 0
        # Session counters are not store statistics: not in the payload.
        assert "hits" not in status and "puts" not in status


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------
class TestStoreGc:
    def test_gc_removes_only_entries_older_than_keep_days(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        pipeline = Pipeline()
        old_request = a_request(seed=1)
        new_request = a_request(seed=2)
        old_fingerprint = store.put(old_request, pipeline.evaluate(old_request))
        store.put(new_request, pipeline.evaluate(new_request))
        # Age the first entry by rewriting its recorded creation time.
        path = store.path_for(old_fingerprint)
        payload = json.loads(path.read_text())
        payload["meta"]["created_unix"] -= 10 * 86400
        path.write_text(json.dumps(payload))

        report = store.gc(keep_days=7)
        assert report.removed == [old_fingerprint]
        assert report.kept == 1
        assert store.get(old_request) is None
        assert store.get(new_request) is not None

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        fingerprint = store.put(request, Pipeline().evaluate(request))
        payload = json.loads(store.path_for(fingerprint).read_text())
        future = payload["meta"]["created_unix"] + 10 * 86400
        report = store.gc(keep_days=7, dry_run=True, now=future)
        assert len(report.removed) == 1 and report.dry_run
        assert store.contains(request)

    def test_gc_keep_days_zero_removes_everything_older_than_now(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        fingerprint = store.put(request, Pipeline().evaluate(request))
        payload = json.loads(store.path_for(fingerprint).read_text())
        created = payload["meta"]["created_unix"]
        report = store.gc(keep_days=0, now=created + 1)
        assert report.removed == [fingerprint]
        assert len(store) == 0

    def test_gc_ages_corrupt_entries_by_mtime(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        fingerprint = store.put(request, Pipeline().evaluate(request))
        path = store.path_for(fingerprint)
        path.write_text("garbage")
        stamp = path.stat().st_mtime - 30 * 86400
        os.utime(path, (stamp, stamp))
        report = store.gc(keep_days=7)
        assert report.removed == [fingerprint]

    def test_gc_rejects_negative_keep_days(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store").gc(keep_days=-1)


# ----------------------------------------------------------------------
# Schema versioning
# ----------------------------------------------------------------------
class TestSchemaBump:
    def test_schema_bump_invalidates_old_entries_cleanly(self, tmp_path):
        root = tmp_path / "store"
        request = a_request()
        evaluation = Pipeline().evaluate(request)
        old_store = ResultStore(root, schema_version=STORE_SCHEMA_VERSION)
        old_store.put(request, evaluation)

        new_store = ResultStore(root, schema_version=STORE_SCHEMA_VERSION + 1)
        # The old entry is unreachable under the new schema: clean miss, no
        # warning (the fingerprint simply addresses a different file).
        assert new_store.get(request) is None
        assert new_store.misses == 1
        new_store.put(request, evaluation)
        assert new_store.get(request) == evaluation
        # Both generations coexist on disk; status reports the stale one.
        assert len(new_store) == 2
        status = new_store.status()
        assert status["stale_schema"] == 1
        assert status["corrupt"] == 0

    def test_mislabelled_schema_version_in_payload_is_warned_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        fingerprint = store.put(request, Pipeline().evaluate(request))
        path = store.path_for(fingerprint)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.warns(ResultStoreWarning):
            assert store.get(request) is None


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
class TestPipelineStore:
    def test_pipeline_probes_store_before_building(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        warm = Pipeline(store=store)
        reference = warm.evaluate(request)
        assert warm.stats.store_hits == 0
        assert store.puts == 1

        # A completely fresh pipeline answers from the store: no factory
        # build, no simulation, exact store_hits accounting.
        cold = Pipeline(store=store)
        result = cold.evaluate(request)
        assert result == reference
        assert cold.stats.store_hits == 1
        assert cold.stats.factory_builds == 0
        assert cold.stats.evaluations == 0
        assert cold.stats.sim_cache_hits == 0

    def test_store_hit_result_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request(method="graph_partition", capacity=3)
        reference = Pipeline().evaluate(request)
        Pipeline(store=store).evaluate(request)
        stored = Pipeline(store=store).evaluate(request)
        assert json.dumps(stored.to_dict(), sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )

    def test_unknown_mapper_fails_before_store_probe(self, tmp_path):
        from repro.api import RegistryError

        store = ResultStore(tmp_path / "store")
        pipeline = Pipeline(store=store)
        with pytest.raises(RegistryError):
            pipeline.evaluate(a_request(method="no-such-mapper"))
        assert store.hits == store.misses == 0


# ----------------------------------------------------------------------
# Executor integration: resumable sweeps
# ----------------------------------------------------------------------
class TestExecutorResume:
    def test_resume_requires_store(self, tmp_path):
        with pytest.raises(ValueError):
            SweepExecutor(resume=True)
        with pytest.raises(ValueError):
            SweepExecutor().run(small_plan(), resume=True)

    def test_store_accepts_path_and_instance(self, tmp_path):
        from_path = SweepExecutor(store=tmp_path / "a")
        assert isinstance(from_path.store, ResultStore)
        instance = ResultStore(tmp_path / "b")
        assert SweepExecutor(store=instance).store is instance

    def test_resumed_rerun_is_byte_identical_with_exact_accounting(self, tmp_path):
        plan = small_plan()
        baseline = SweepExecutor(workers=1).run(plan)
        blob = json.dumps(baseline.to_dict(), sort_keys=True)

        store = ResultStore(tmp_path / "store")
        first = SweepExecutor(workers=1, store=store).run(plan, resume=True)
        assert json.dumps(first.to_dict(), sort_keys=True) == blob
        assert first.stats.store_hits == 0
        assert first.stats.evaluations == len(plan)

        second = SweepExecutor(workers=1, store=store).run(plan, resume=True)
        assert json.dumps(second.to_dict(), sort_keys=True) == blob
        assert second.stats.store_hits == len(plan)
        assert second.stats.evaluations == 0
        assert second.stats.requests == (
            second.stats.duplicate_hits
            + second.stats.store_hits
            + second.stats.evaluations
        )

    def test_killed_sweep_resumes_where_it_died(self, tmp_path):
        """The acceptance contract: kill mid-plan, resume, byte-identical.

        A mapper that works for a prefix of the plan and then raises stands
        in for the killed process: the store must retain exactly the prefix
        (results are persisted as they complete), and the resumed run must
        re-execute only the missing requests.
        """
        from repro.api import get_mapper

        linear = get_mapper("linear")
        calls = {"n": 0}

        def flaky(factory, seed=0, context=None):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("simulated crash")
            return linear.place(factory, seed=seed, context=context)

        plan = SweepPlan.from_grid(methods=("flaky-linear",), capacities=(2, 3, 4, 5))
        register_mapper(flaky, name="flaky-linear")
        try:
            store = ResultStore(tmp_path / "store")
            with pytest.raises(RuntimeError, match="simulated crash"):
                SweepExecutor(workers=1, store=store).run(plan, resume=True)
            assert len(store) == 2  # the prefix survived the crash

            calls["n"] = -100  # "restart with fixed code": never raise again
            resumed = SweepExecutor(workers=1, store=store).run(plan, resume=True)
            assert resumed.stats.store_hits == 2
            assert resumed.stats.evaluations == 2

            uninterrupted = SweepExecutor(workers=1).run(plan)
            assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
                uninterrupted.to_dict(), sort_keys=True
            )
        finally:
            unregister_mapper("flaky-linear")

    def test_killed_sweep_resumes_batched(self, tmp_path):
        """``--batch`` resume: the stored prefix is served from the store
        and only the misses reach the batched simulator core, byte-identical
        to the unbatched resumed run and to an uninterrupted baseline.
        """
        from repro.api import get_mapper

        linear = get_mapper("linear")
        calls = {"n": 0}

        def flaky(factory, seed=0, context=None):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("simulated crash")
            return linear.place(factory, seed=seed, context=context)

        plan = SweepPlan.from_grid(methods=("flaky-batch",), capacities=(2, 3, 4, 5))
        register_mapper(flaky, name="flaky-batch")
        try:
            store = ResultStore(tmp_path / "store")
            with pytest.raises(RuntimeError, match="simulated crash"):
                SweepExecutor(workers=1, store=store).run(plan, resume=True)
            assert len(store) == 2  # partial prefix survived the crash

            calls["n"] = -100  # "restart with fixed code": never raise again
            resumed = SweepExecutor(store=store, batch=True).run(plan, resume=True)
            assert resumed.stats.store_hits == 2
            assert resumed.stats.evaluations == 2  # only the misses batched

            unbatched = SweepExecutor(workers=1).run(plan)
            assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
                unbatched.to_dict(), sort_keys=True
            )
        finally:
            unregister_mapper("flaky-batch")

    def test_parallel_worker_failure_persists_completed_work(self, tmp_path):
        """A failing request must not throw away its siblings' results.

        The pool shutdown runs every submitted request to completion, so
        the executor drains completed futures into the store before
        re-raising — a resumed run then re-executes only the failed point.
        """
        from repro.api import get_mapper

        linear = get_mapper("linear")

        def capacity_bomb(factory, seed=0, context=None):
            if factory.spec.k == 3:
                raise RuntimeError("boom at capacity 3")
            return linear.place(factory, seed=seed, context=context)

        register_mapper(capacity_bomb, name="capacity-bomb")
        try:
            plan = SweepPlan.from_grid(
                methods=("capacity-bomb",), capacities=(2, 3, 4, 5)
            )
            store = ResultStore(tmp_path / "store")
            with pytest.raises(RuntimeError, match="boom at capacity 3"):
                SweepExecutor(workers=2, store=store).run(plan)
            # Every request except the failing one was persisted.
            assert len(store) == 3
            resumed = SweepExecutor(workers=1, store=store)
            with pytest.raises(RuntimeError, match="boom at capacity 3"):
                resumed.run(plan, resume=True)
            stats = resumed.store.hits  # 3 prefix hits before the bomb
            assert stats == 3
        finally:
            unregister_mapper("capacity-bomb")

    def test_parallel_resume_skips_stored_prefix(self, tmp_path):
        plan = SweepPlan.from_grid(
            methods=METHODS, capacities=CAPACITIES, seeds=(0, 1)
        )
        baseline = json.dumps(
            SweepExecutor(workers=1).run(plan).to_dict(), sort_keys=True
        )
        store = ResultStore(tmp_path / "store")
        prefix = SweepPlan.from_requests(list(plan)[:3])
        SweepExecutor(workers=1, store=store).run(prefix)
        resumed = SweepExecutor(workers=2, store=store).run(plan, resume=True)
        assert resumed.stats.store_hits == 3
        assert resumed.stats.evaluations == len(plan) - 3
        assert json.dumps(resumed.to_dict(), sort_keys=True) == baseline

    def test_duplicates_still_count_as_duplicates_not_store_hits(self, tmp_path):
        base = list(small_plan())
        plan = SweepPlan.from_requests(base + [base[0], base[0]])
        store = ResultStore(tmp_path / "store")
        executor = SweepExecutor(workers=1, store=store)
        executor.run(SweepPlan.from_requests(base[:1]))
        stats = executor.run(plan, resume=True).stats
        assert stats.duplicate_hits == 2
        assert stats.store_hits == 1
        assert stats.evaluations == len(base) - 1
        assert stats.requests == (
            stats.duplicate_hits + stats.store_hits + stats.evaluations
        )

    def test_store_identity_carries_effective_sim_config(self, tmp_path):
        """Two executors with different default configs must not alias.

        A request with ``sim_config=None`` inherits the executor default at
        evaluation time, so the store fingerprint must carry the *resolved*
        config: resuming under a different default must recompute, not
        serve the other configuration's numbers.
        """
        store = ResultStore(tmp_path / "store")
        plan = SweepPlan.from_grid(methods=("linear",), capacities=(2,))
        config_a = SimulatorConfig(max_candidates=8, allow_detour=True)
        config_b = SimulatorConfig(max_candidates=1)
        run_a = SweepExecutor(workers=1, sim_config=config_a, store=store).run(
            plan, resume=True
        )
        run_b = SweepExecutor(workers=1, sim_config=config_b, store=store).run(
            plan, resume=True
        )
        assert run_b.stats.store_hits == 0  # config_a's entry must not serve
        reference_b = SweepExecutor(workers=1, sim_config=config_b).run(plan)
        assert run_b.evaluations == reference_b.evaluations
        assert len(store) == 2  # one entry per effective configuration

        # Same effective config expressed implicitly vs explicitly is ONE
        # identity: a request carrying config_a hits the entry stored by
        # the executor whose *default* was config_a.
        explicit = SweepPlan.from_grid(
            methods=("linear",), capacities=(2,), sim_config=config_a
        )
        resumed = SweepExecutor(workers=1, store=store).run(explicit, resume=True)
        assert resumed.stats.store_hits == 1
        assert resumed.evaluations == run_a.evaluations

    def test_pipeline_store_identity_carries_effective_sim_config(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        request = a_request()
        config = SimulatorConfig(max_candidates=1)
        Pipeline(sim_config=config, store=store).evaluate(request)
        other = Pipeline(sim_config=SimulatorConfig(max_candidates=8), store=store)
        other.evaluate(request)
        assert other.stats.store_hits == 0
        # The default-config pipeline likewise gets its own entry.
        default = Pipeline(store=store)
        default.evaluate(request)
        assert default.stats.store_hits == 0
        assert len(store) == 3

    def test_failed_store_write_warns_but_never_kills_the_sweep(
        self, tmp_path, monkeypatch
    ):
        """The store is a pure optimization: a full disk costs persistence
        of a result, never the sweep that computed it."""
        import repro.api.store as store_module

        store = ResultStore(tmp_path / "store")
        plan = small_plan()
        reference = SweepExecutor(workers=1).run(plan)

        def disk_full(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store_module, "atomic_write_json", disk_full)
        executor = SweepExecutor(workers=1, store=store)
        with pytest.warns(ResultStoreWarning):
            result = executor.run(plan, resume=True)
        assert result.evaluations == reference.evaluations
        assert result.stats.evaluations == len(plan)
        assert len(store) == 0  # nothing persisted, nothing broken

    def test_without_resume_store_is_write_only(self, tmp_path):
        plan = small_plan()
        store = ResultStore(tmp_path / "store")
        executor = SweepExecutor(workers=1, store=store)
        executor.run(plan)
        again = executor.run(plan)  # resume defaults to False: recompute
        assert again.stats.store_hits == 0
        assert again.stats.evaluations == len(plan)
        assert len(store) == len(plan)


# ----------------------------------------------------------------------
# Persistable simulation cache (same fingerprint discipline)
# ----------------------------------------------------------------------
class TestSimulationCachePersistence:
    def _scenario(self):
        from repro.circuits.circuit import Circuit
        from repro.circuits.gates import cnot, prep
        from repro.mapping.placement import row_major_placement

        circuit = Circuit("persist")
        q = circuit.add_register("q", 4)
        circuit.append(prep(q[0]))
        circuit.append(cnot(q[0], q[1]))
        circuit.append(cnot(q[2], q[3]))
        return circuit, row_major_placement(list(range(4)))

    def test_fingerprint_is_stable_and_config_sensitive(self):
        circuit, placement = self._scenario()
        base = simulation_fingerprint(circuit, placement)
        assert base == simulation_fingerprint(circuit, placement)
        assert len(base) == 40
        assert base != simulation_fingerprint(
            circuit, placement, SimulatorConfig(max_candidates=5)
        )

    def test_save_load_round_trip_serves_without_resimulating(
        self, tmp_path, monkeypatch
    ):
        circuit, placement = self._scenario()
        cache = SimulationCache()
        reference = cache.simulate(circuit, placement)
        path = tmp_path / "simcache.json"
        assert cache.save(path) == 1

        loaded = SimulationCache.load(path)
        import repro.routing.simulator as simulator_module

        def explode(*args, **kwargs):
            raise AssertionError("persisted entry must serve this probe")

        monkeypatch.setattr(simulator_module, "simulate", explode)
        served = loaded.simulate(circuit, placement)
        assert served.to_dict() == reference.to_dict()
        assert loaded.persisted_hits == 1
        assert loaded.hits == 1

    def test_corrupt_cache_file_loads_empty_with_warning(self, tmp_path):
        path = tmp_path / "simcache.json"
        path.write_text("{ not json")
        with pytest.warns(SimulationCacheWarning):
            cache = SimulationCache.load(path)
        assert len(cache) == 0

    def test_foreign_schema_cache_file_loads_empty_with_warning(self, tmp_path):
        path = tmp_path / "simcache.json"
        path.write_text(json.dumps({"schema": "something-else/v9", "entries": {}}))
        with pytest.warns(SimulationCacheWarning):
            SimulationCache.load(path)

    def test_undecodable_entry_is_skipped_with_warning(self, tmp_path):
        circuit, placement = self._scenario()
        cache = SimulationCache()
        cache.simulate(circuit, placement)
        path = tmp_path / "simcache.json"
        cache.save(path)
        payload = json.loads(path.read_text())
        payload["entries"]["deadbeef"] = {"latency": "nope"}
        payload["entries"]["cafebabe"] = "not a dict at all"
        path.write_text(json.dumps(payload))
        with pytest.warns(SimulationCacheWarning):
            loaded = SimulationCache.load(path)
        assert len(loaded._persisted) == 1

    def test_non_dict_entries_table_loads_empty_with_warning(self, tmp_path):
        from repro.routing.simulator import (
            _SIM_FINGERPRINT_TAG,
            SIM_CACHE_SCHEMA_VERSION,
        )

        path = tmp_path / "simcache.json"
        schema = _SIM_FINGERPRINT_TAG.format(version=SIM_CACHE_SCHEMA_VERSION)
        path.write_text(json.dumps({"schema": schema, "entries": [1, 2]}))
        with pytest.warns(SimulationCacheWarning):
            loaded = SimulationCache.load(path)
        assert len(loaded._persisted) == 0

    def test_load_max_persisted_truncates_with_warning(self, tmp_path):
        circuit, placement = self._scenario()
        cache = SimulationCache()
        cache.simulate(circuit, placement)
        cache.simulate(circuit, placement, SimulatorConfig(max_candidates=4))
        path = tmp_path / "simcache.json"
        assert cache.save(path) == 2
        with pytest.warns(SimulationCacheWarning):
            bounded = SimulationCache.load(path, max_persisted=1)
        assert len(bounded._persisted) == 1
        unbounded = SimulationCache.load(path)
        assert len(unbounded._persisted) == 2

    def test_save_creates_parent_directories(self, tmp_path):
        circuit, placement = self._scenario()
        cache = SimulationCache()
        cache.simulate(circuit, placement)
        path = tmp_path / "nested" / "dirs" / "simcache.json"
        assert cache.save(path) == 1
        assert path.is_file()

    def test_clear_drops_persisted_entries(self, tmp_path):
        circuit, placement = self._scenario()
        cache = SimulationCache()
        cache.simulate(circuit, placement)
        path = tmp_path / "simcache.json"
        cache.save(path)
        loaded = SimulationCache.load(path)
        loaded.clear()
        assert len(loaded._persisted) == 0


# ----------------------------------------------------------------------
# Concurrency: the store is shared by HTTP handler threads, the sweep
# service job worker, and parallel executors — all at once
# ----------------------------------------------------------------------
class TestStoreConcurrency:
    REQUESTS_PER_THREAD = 25

    def _hammer(self, store, requests, evaluations, thread_count=8):
        """N threads interleave put/try_put/get over overlapping requests."""
        import threading

        errors = []
        observed = [[] for _ in range(thread_count)]
        barrier = threading.Barrier(thread_count)

        def worker(worker_index):
            try:
                barrier.wait()
                for step in range(self.REQUESTS_PER_THREAD):
                    pick = (worker_index + step) % len(requests)
                    request, evaluation = requests[pick], evaluations[pick]
                    op = (worker_index + step) % 3
                    if op == 0:
                        store.put(request, evaluation)
                    elif op == 1:
                        store.try_put(request, evaluation)
                    else:
                        observed[worker_index].append(
                            (pick, store.get(request))
                        )
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        return errors, observed

    def test_hammered_store_never_tears_or_loses_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        requests = [
            a_request(),
            a_request(capacity=3),
            a_request(method="graph_partition"),
            a_request(method="graph_partition", capacity=3),
        ]
        pipeline = Pipeline()
        evaluations = [pipeline.evaluate(request) for request in requests]

        errors, observed = self._hammer(store, requests, evaluations)
        assert errors == []

        # No lost entries: every request hammered is present and exact.
        assert len(store) == len(requests)
        for request, evaluation in zip(requests, evaluations):
            assert store.get(request) == evaluation
        # No torn reads: every concurrent get saw nothing or the one true
        # value for that fingerprint — never corrupt bytes (atomic
        # temp-file + rename means a reader can't observe a partial write).
        assert store.corrupt_skipped == 0
        for per_thread in observed:
            for pick, result in per_thread:
                assert result is None or result == evaluations[pick]

    def test_concurrent_writers_one_winner_per_fingerprint(self, tmp_path):
        import threading

        store = ResultStore(tmp_path / "store")
        request = a_request()
        evaluation = Pipeline().evaluate(request)
        thread_count = 8
        barrier = threading.Barrier(thread_count)
        fingerprints = []
        lock = threading.Lock()

        def writer():
            barrier.wait()
            fingerprint = store.put(request, evaluation)
            with lock:
                fingerprints.append(fingerprint)

        threads = [
            threading.Thread(target=writer) for _ in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert len(set(fingerprints)) == 1
        assert len(store) == 1  # last atomic rename wins; never a dup
        assert store.get(request) == evaluation
        # The payload on disk is whole, parseable JSON (no interleaving).
        payload = json.loads(store.path_for(fingerprints[0]).read_text())
        assert payload["fingerprint"] == fingerprints[0]
