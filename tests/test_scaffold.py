"""Unit tests for the Scaffold-style emitter/parser (repro.circuits.scaffold)."""

import pytest

from repro.circuits import (
    Circuit,
    barrier,
    cnot,
    cxx,
    emit_scaffold,
    h,
    inject_t,
    meas_x,
    parse_flat_assembly,
    roundtrip,
)


def sample_circuit():
    circuit = Circuit("sample")
    raw = circuit.add_register("raw_states", 4)
    anc = circuit.add_register("anc", 3)
    circuit.append(h(anc[0]))
    circuit.append(cnot(anc[0], anc[1]))
    circuit.append(inject_t(raw[0], anc[2]))
    circuit.append(cxx(anc[0], [anc[1], anc[2]]))
    circuit.append(meas_x(anc[1]))
    circuit.append(barrier(tag="end"))
    return circuit


class TestEmission:
    def test_emits_register_declarations(self):
        text = emit_scaffold(sample_circuit())
        assert "qbit raw_states[4];" in text
        assert "qbit anc[3];" in text

    def test_emits_symbolic_operands(self):
        text = emit_scaffold(sample_circuit())
        assert "CNOT ( anc[0] , anc[1] );" in text
        assert "injectT ( raw_states[0] , anc[2] );" in text

    def test_header_contains_counts(self):
        circuit = sample_circuit()
        text = emit_scaffold(circuit)
        assert f"qubits: {circuit.num_qubits}" in text

    def test_header_can_be_suppressed(self):
        text = emit_scaffold(sample_circuit(), include_header=False)
        assert not text.startswith("//")

    def test_tags_become_comments(self):
        text = emit_scaffold(sample_circuit())
        assert "// end" in text


class TestParsing:
    def test_roundtrip_preserves_gates(self):
        circuit = sample_circuit()
        parsed = roundtrip(circuit)
        assert len(parsed) == len(circuit)
        assert [g.kind for g in parsed] == [g.kind for g in circuit]
        assert [g.qubits for g in parsed] == [g.qubits for g in circuit]

    def test_roundtrip_preserves_registers(self):
        parsed = roundtrip(sample_circuit())
        assert parsed.register("raw_states").size == 4
        assert parsed.register("anc").size == 3

    def test_parse_flat_integer_operands(self):
        circuit = parse_flat_assembly("qbit q[3];\nCNOT ( 0 , 2 );\n")
        assert circuit[0].qubits == (0, 2)

    def test_parse_ignores_comments_and_blank_lines(self):
        text = "// comment\n\nqbit q[2];\nH ( q[0] );\n"
        circuit = parse_flat_assembly(text)
        assert len(circuit) == 1

    def test_parse_unknown_mnemonic_raises(self):
        with pytest.raises(ValueError):
            parse_flat_assembly("qbit q[1];\nFROB ( q[0] );\n")

    def test_parse_unknown_register_raises(self):
        with pytest.raises(ValueError):
            parse_flat_assembly("qbit q[1];\nH ( other[0] );\n")

    def test_parse_register_overflow_raises(self):
        with pytest.raises(ValueError):
            parse_flat_assembly("qbit q[1];\nH ( q[3] );\n")

    def test_parse_bad_line_raises(self):
        with pytest.raises(ValueError):
            parse_flat_assembly("qbit q[1];\nthis is not a gate\n")

    def test_parse_bad_register_declaration_raises(self):
        with pytest.raises(ValueError):
            parse_flat_assembly("qbit q;\n")


class TestFactoryRoundtrip:
    def test_factory_circuit_roundtrips(self, single_level_k4):
        circuit = single_level_k4.circuit
        parsed = roundtrip(circuit)
        assert len(parsed) == len(circuit)
        assert [g.kind for g in parsed] == [g.kind for g in circuit]
        assert parsed.num_qubits == circuit.num_qubits

    def test_two_level_circuit_roundtrips(self, two_level_cap4):
        circuit = two_level_cap4.circuit
        parsed = roundtrip(circuit)
        assert [g.qubits for g in parsed] == [g.qubits for g in circuit]
