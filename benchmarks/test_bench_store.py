"""Benchmark: resumable sweeps against the persistent result store.

The contract checked here mirrors the executor benchmark: attaching a
store never changes results (byte-identical serialized output), and a
*resumed* run of an already-stored plan answers every point from disk —
no factory builds, no simulation — which must be dramatically cheaper
than computing the sweep.
"""

from __future__ import annotations

import json

from conftest import run_once, single_level_capacities
from repro.api import ResultStore, SweepExecutor, SweepPlan

STORE_METHODS = ("force_directed", "graph_partition")


def store_plan() -> SweepPlan:
    return SweepPlan.from_grid(
        methods=STORE_METHODS, capacities=single_level_capacities(), levels=1
    )


def test_bench_cold_sweep_with_store(benchmark, tmp_path):
    """Timing baseline: the full plan computed once, persisting every point."""
    store = ResultStore(tmp_path / "store")
    result = run_once(
        benchmark, SweepExecutor(workers=1, store=store).run, store_plan()
    )
    assert len(result.evaluations) == len(store_plan())
    assert len(store) == len(store_plan())


def test_bench_resumed_sweep_is_store_served(benchmark, tmp_path):
    """A resumed run of a fully stored plan does zero evaluation work."""
    plan = store_plan()
    store = ResultStore(tmp_path / "store")
    SweepExecutor(workers=1, store=store).run(plan)

    result = run_once(
        benchmark,
        SweepExecutor(workers=1, store=store).run,
        plan,
        resume=True,
    )
    stats = result.stats
    assert stats.store_hits == len(plan)
    assert stats.evaluations == 0
    assert stats.factory_builds == 0
    assert stats.sim_cache_hits == 0


def test_store_never_changes_results(tmp_path):
    """Cold, store-backed, and resumed runs serialize byte-identically."""
    plan = store_plan()
    reference = json.dumps(
        SweepExecutor(workers=1).run(plan).to_dict(), sort_keys=True
    )
    store = ResultStore(tmp_path / "store")
    cold = SweepExecutor(workers=1, store=store).run(plan, resume=True)
    resumed = SweepExecutor(workers=1, store=store).run(plan, resume=True)
    assert json.dumps(cold.to_dict(), sort_keys=True) == reference
    assert json.dumps(resumed.to_dict(), sort_keys=True) == reference


def test_resumed_run_is_much_faster_than_cold(tmp_path):
    """The point of persistence: resuming a stored sweep is nearly free.

    The cold run simulates every point (seconds); the resumed run reads a
    handful of JSON files.  A 5x margin keeps this robust on slow CI disks
    while still catching an accidentally disabled store probe.
    """
    import time

    plan = store_plan()
    store = ResultStore(tmp_path / "store")
    tick = time.perf_counter()
    SweepExecutor(workers=1, store=store).run(plan)
    cold_seconds = time.perf_counter() - tick

    tick = time.perf_counter()
    result = SweepExecutor(workers=1, store=store).run(plan, resume=True)
    resumed_seconds = time.perf_counter() - tick

    assert result.stats.store_hits == len(plan)
    assert resumed_seconds * 5 < cold_seconds, (
        f"resumed run ({resumed_seconds:.3f}s) should be at least 5x faster "
        f"than the cold run ({cold_seconds:.3f}s)"
    )
