"""EXP-F9cd: regenerate Fig. 9c/9d (permutation-step latency by hop policy)."""

from conftest import run_once, two_level_capacities

from repro.experiments import fig9_permutation


def test_bench_fig9cd_permutation_hops(benchmark):
    """Fig. 9c/9d: annealed intermediate hops do not hurt, and help at scale."""
    result = run_once(
        benchmark, fig9_permutation.run, capacities=two_level_capacities(), seed=0
    )
    print()
    print(fig9_permutation.format_result(result))

    table = result.by_mode()
    for capacity in table["none"]:
        baseline = table["none"][capacity]
        annealed = table["annealed_midpoint"][capacity]
        # The paper reports ~1.3x reduction from annealed hops; at reduced
        # scale we only require that annealing never degrades the step badly.
        assert annealed <= baseline * 1.15
        # Purely random Valiant hops lengthen braids and should not be the
        # best policy.
        assert table["random"][capacity] >= min(annealed, baseline) * 0.95
