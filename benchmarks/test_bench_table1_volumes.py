"""EXP-T1: regenerate Table I (quantum volumes for every factory design)."""

from conftest import full_sweep_enabled, run_once, two_level_capacities

from repro.experiments import table1_volumes


def test_bench_table1_level1(benchmark):
    """Table I, level-1 block: Random worst, Line/FD best, all above Critical."""
    capacities = (2, 4, 8, 10, 24)
    result = run_once(benchmark, table1_volumes.run, levels=1, capacities=capacities)
    print()
    print(table1_volumes.format_result(result))

    volumes = result.volumes
    for capacity in capacities:
        critical = volumes["critical"][capacity]
        for row in ("random", "linear_no_reuse", "force_directed", "graph_partition"):
            assert volumes[row][capacity] >= 0.99 * critical
        # Random is the worst procedure for every capacity (paper shape).
        others = [
            volumes[row][capacity]
            for row in ("linear_no_reuse", "force_directed", "graph_partition")
        ]
        assert volumes["random"][capacity] >= max(others) * 0.9


def test_bench_table1_level2(benchmark):
    """Table I, level-2 block: HS lowest, GP next, everything above Critical."""
    capacities = two_level_capacities()
    result = run_once(benchmark, table1_volumes.run, levels=2, capacities=capacities)
    print()
    print(table1_volumes.format_result(result))
    print("\npaper reference values:")
    paper = table1_volumes.paper_reference(2)
    for row in result.rows():
        if row in paper:
            print(f"  {row:26s}" + "".join(
                f"{paper[row].get(c, float('nan')):>12.3g}"
                for c in capacities
                if c in paper[row]
            ))

    volumes = result.volumes
    largest = max(capacities)
    hs = volumes["hierarchical_stitching"][largest]
    assert hs <= volumes["linear_no_reuse"][largest]
    assert hs <= volumes["graph_partition"][largest]
    assert hs >= 0.99 * volumes["critical"][largest]
    if full_sweep_enabled():
        # At the paper's largest capacity the reduction over Line(NR) is the
        # headline 5.64x; require a substantial reduction without pinning the
        # exact constant of a different cycle model.
        assert volumes["linear_no_reuse"][largest] / hs > 1.5
