"""Benchmark guard: the bucketed metrics engine on the Fig. 7 factory graphs.

The Fig. 7 sweep is the workload whose force-directed points now run
entirely on the bucketed/incremental exact-metrics engine, so this module
asserts the engine's ground truth at paper scale: on every factory graph of
the sweep (single- and two-level, linear and randomized layouts) the
bucketed crossing count must equal the brute-force ``_reference`` oracle,
and the fast spacing metric must match the pairwise-loop oracle.

It also times the bucketed counter against brute force on the largest
two-level graph, printing the observed speedup (informational; the exact
equality is the hard guard).
"""

from __future__ import annotations

import time

import pytest

from conftest import full_sweep_enabled, single_level_capacities, two_level_capacities
from repro.distillation import ReusePolicy, build_factory, FactorySpec
from repro.graphs import (
    average_edge_spacing,
    average_edge_spacing_reference,
    count_edge_crossings,
    count_edge_crossings_reference,
    interaction_graph,
)
from repro.mapping import linear_factory_placement, random_circuit_placement


def _fig7_configs():
    configs = [(capacity, 1) for capacity in single_level_capacities()]
    configs += [(capacity, 2) for capacity in two_level_capacities()]
    return configs


def _factory_graph(capacity, levels):
    factory = build_factory(
        FactorySpec.from_capacity(capacity, levels),
        reuse_policy=ReusePolicy.NO_REUSE,
        barriers_between_rounds=True,
    )
    return factory, interaction_graph(factory.circuit)


@pytest.mark.parametrize("capacity,levels", _fig7_configs())
def test_bucketed_crossings_equal_brute_force(capacity, levels):
    """Exact equality on linear and randomized layouts of every fig7 graph."""
    factory, graph = _factory_graph(capacity, levels)
    layouts = [linear_factory_placement(factory)]
    # Randomized layouts are the least compact geometry the engine sees
    # (they dominate the Fig. 6 study); one seed suffices under the full
    # sweep, where the large graphs make the oracle expensive.
    seeds = (0,) if full_sweep_enabled() else (0, 1)
    for seed in seeds:
        layouts.append(random_circuit_placement(factory.circuit, seed=seed))
    for layout in layouts:
        positions = layout.as_float_positions()
        assert count_edge_crossings(graph, positions) == (
            count_edge_crossings_reference(graph, positions)
        )
        assert average_edge_spacing(graph, positions) == pytest.approx(
            average_edge_spacing_reference(graph, positions), rel=1e-9
        )


def test_bench_bucketed_crossing_speedup(benchmark):
    """Time the bucketed counter on the largest two-level fig7 graph."""
    capacity = max(two_level_capacities())
    factory, graph = _factory_graph(capacity, 2)
    positions = linear_factory_placement(factory).as_float_positions()

    started = time.perf_counter()
    reference = count_edge_crossings_reference(graph, positions)
    reference_seconds = time.perf_counter() - started

    bucketed = benchmark(count_edge_crossings, graph, positions)
    assert bucketed == reference
    bucketed_seconds = benchmark.stats.stats.mean
    print(
        f"\n[bench] crossing count, L2 K={capacity} "
        f"({graph.number_of_edges()} edges): bucketed {bucketed_seconds * 1000:.1f}ms "
        f"vs brute force {reference_seconds * 1000:.1f}ms "
        f"({reference_seconds / bucketed_seconds:.1f}x)"
    )
