"""EXP-F7a/b: regenerate Fig. 7 (FD / GP latency vs theoretical lower bound)."""

from conftest import run_once, single_level_capacities, two_level_capacities

from repro.experiments import fig7_scaling


def test_bench_fig7a_single_level(benchmark):
    """Fig. 7a: single-level factories — both mappers stay near the bound."""
    result = run_once(
        benchmark, fig7_scaling.run_single_level, capacities=single_level_capacities()
    )
    print()
    print(fig7_scaling.format_result(result))

    series = result.series()
    for method in ("force_directed", "graph_partition"):
        for capacity, latency in series[method].items():
            bound = series["lower_bound"][capacity]
            assert latency >= bound
            # Single-level factories execute close to the bound (paper: nearly
            # optimal; we allow a 2.5x envelope for the reimplemented stack).
            assert latency <= 2.5 * bound


def test_bench_fig7b_two_level(benchmark):
    """Fig. 7b: two-level factories — the gap to the bound widens."""
    result = run_once(
        benchmark, fig7_scaling.run_two_level, capacities=two_level_capacities()
    )
    print()
    print(fig7_scaling.format_result(result))

    series = result.series()
    capacities = sorted(series["lower_bound"])
    largest = capacities[-1]
    smallest = capacities[0]
    for method in ("force_directed", "graph_partition"):
        small_gap = series[method][smallest] / series["lower_bound"][smallest]
        large_gap = series[method][largest] / series["lower_bound"][largest]
        assert large_gap >= 1.0
        # The relative gap grows (or at least does not shrink dramatically)
        # with capacity, mirroring the widening gap of Fig. 7b.
        assert large_gap >= 0.8 * small_gap
