"""EXP-F9ab: regenerate Fig. 9a/9b (qubit reuse vs renaming volume differentials)."""

from conftest import run_once, two_level_capacities

from repro.experiments import fig9_reuse


def test_bench_fig9ab_reuse_differentials(benchmark):
    """Fig. 9a/9b: reuse shrinks the linear/GP mappings' volume (area savings)."""
    result = run_once(benchmark, fig9_reuse.run, capacities=two_level_capacities())
    print()
    print(fig9_reuse.format_result(result))

    by_method = result.by_method()
    for capacity, comparison in by_method["linear"].items():
        # Reuse always saves area for the linear mapping; the volume with
        # reuse therefore should not exceed the no-reuse volume by much.
        assert comparison.volume_reuse <= comparison.volume_no_reuse * 1.15
    # Every differential stays in the plausible band of Fig. 9b.
    for comparisons in by_method.values():
        for comparison in comparisons.values():
            assert -0.6 <= comparison.differential <= 0.6
