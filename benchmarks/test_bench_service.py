"""Benchmark: the sweep service's duplicate-work elimination layers.

The contract checked here mirrors the store benchmark one level up: a
cold request through the HTTP service costs one evaluation, while the
warm paths — store-served bodies and fingerprint-ETag ``304``
revalidation — must be answered in well under the cost of a simulation,
and a thundering herd of identical concurrent requests must cost exactly
one evaluation (singleflight).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from conftest import run_once
from repro.api import EvaluationRequest
from repro.service import SweepService, create_server

HERD = 8


@pytest.fixture
def live_service(tmp_path):
    service = SweepService(store=tmp_path / "store")
    service.start()
    server = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def post_evaluate(base_url, payload, etag=None):
    request = urllib.request.Request(
        f"{base_url}/v1/evaluate",
        data=json.dumps(payload).encode("utf-8"),
        headers={"If-None-Match": etag} if etag else {},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            body = response.read()
            return (
                response.status,
                response.headers.get("ETag"),
                json.loads(body) if body else None,
            )
    except urllib.error.HTTPError as error:
        if error.code == 304:  # urllib models not-modified as an error
            return 304, error.headers.get("ETag"), None
        raise AssertionError(f"HTTP {error.code}: {error.read()!r}")


def test_bench_cold_evaluate_over_http(benchmark, live_service):
    """Timing baseline: one evaluation through the full HTTP stack."""
    _, base_url = live_service
    payload = EvaluationRequest(method="linear", capacity=4).to_dict()
    status, etag, body = run_once(benchmark, post_evaluate, base_url, payload)
    assert status == 200
    assert body["source"] == "evaluated"
    assert etag == f'"{body["fingerprint"]}"'


def test_bench_etag_revalidation_is_cheap(benchmark, live_service):
    """A 304 costs no evaluation, no store read — HTTP overhead only."""
    service, base_url = live_service
    payload = EvaluationRequest(method="linear", capacity=4).to_dict()
    _, etag, _ = post_evaluate(base_url, payload)
    reads_before = service.store.counters()

    def revalidate_many(rounds=50):
        for _ in range(rounds):
            status, _, _ = post_evaluate(base_url, payload, etag=etag)
            assert status == 304

    run_once(benchmark, revalidate_many)
    assert service.store.counters() == reads_before
    assert service.pipeline.stats.evaluations == 1
    assert service.counters.not_modified == 50


def test_bench_coalesced_herd_costs_one_evaluation(benchmark, live_service):
    """HERD identical concurrent requests -> exactly one simulation."""
    service, base_url = live_service
    payload = EvaluationRequest(method="linear", capacity=6).to_dict()
    barrier = threading.Barrier(HERD)

    def one_client(_):
        barrier.wait()
        return post_evaluate(base_url, payload)

    def herd():
        with ThreadPoolExecutor(max_workers=HERD) as pool:
            return list(pool.map(one_client, range(HERD)))

    responses = run_once(benchmark, herd)
    assert [status for status, _, _ in responses] == [200] * HERD
    bodies = [json.dumps(body["result"], sort_keys=True) for _, _, body in responses]
    assert len(set(bodies)) == 1
    # The herd cost one evaluation; everyone else coalesced or hit the
    # store the leader had just populated.
    assert service.pipeline.stats.evaluations == 1
    sources = [body["source"] for _, _, body in responses]
    assert sources.count("evaluated") == 1
    assert service.counters.coalesced_hits == sources.count("coalesced")
