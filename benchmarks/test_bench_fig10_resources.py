"""EXP-F10: regenerate Fig. 10 (latency / area / volume for every mapper)."""

from conftest import run_once, single_level_capacities, two_level_capacities

from repro.experiments import fig10_resources


def test_bench_fig10_single_level(benchmark):
    """Fig. 10a/10b/10e: single-level resources — linear baseline near optimal."""
    result = run_once(
        benchmark,
        fig10_resources.run_single_level,
        capacities=single_level_capacities(),
    )
    print()
    print(fig10_resources.format_result(result))

    volumes = result.series("volume")
    areas = result.series("area")
    capacities = sorted(volumes["linear"])
    for method in volumes:
        # Latency, area and volume all grow monotonically-ish with capacity.
        assert volumes[method][capacities[-1]] > volumes[method][capacities[0]]
        assert areas[method][capacities[-1]] > areas[method][capacities[0]]
    # The linear hand layout is the best or near-best single-level mapping.
    for capacity in capacities:
        best = min(volumes[m][capacity] for m in volumes)
        assert volumes["linear"][capacity] <= 1.3 * best


def test_bench_fig10_two_level(benchmark):
    """Fig. 10c/10d/10f: two-level resources — hierarchical stitching wins."""
    result = run_once(
        benchmark, fig10_resources.run_two_level, capacities=two_level_capacities()
    )
    print()
    print(fig10_resources.format_result(result))

    volumes = result.series("volume")
    capacities = sorted(volumes["linear"])
    largest = capacities[-1]
    # Headline shape: HS achieves the lowest volume of every procedure at the
    # largest capacity swept, with a clear reduction over the linear baseline.
    stitching = volumes["hierarchical_stitching"][largest]
    for method, series in volumes.items():
        if method != "hierarchical_stitching":
            assert stitching <= series[largest]
    reduction = result.volume_reduction(largest)
    print(f"\nvolume reduction (linear / stitching) at K={largest}: {reduction:.2f}x "
          f"(paper: {fig10_resources.PAPER_HEADLINE_REDUCTION}x at K=100)")
    assert reduction > 1.2
