"""Benchmark guard: the bitmask/wakeup simulation engine on the Fig. 7 factories.

Every figure of the paper is evaluated through :func:`repro.routing.simulate`,
so this module asserts the default engine's ground truth at paper scale: on
every factory configuration of the Fig. 7 sweep (single- and two-level,
linear and congested random layouts, stall and detour policies) the bitmask
engine's ``SimulationResult.to_dict()`` must be byte-identical to the
set-based :func:`~repro.routing.simulate_reference` oracle — whose own
internal assertions also verify the wakeup parking invariant on every run.

It also times both engines on the stall-heavy congestion case (the
``sim-congestion`` bench scenario's headline configuration), asserting a
conservative floor under the committed BENCH record's speedup so a
performance regression of the wakeup engine fails loudly.
"""

from __future__ import annotations

import time

import pytest

from conftest import single_level_capacities, two_level_capacities
from repro.distillation import FactorySpec, ReusePolicy, build_factory
from repro.mapping import linear_factory_placement, random_circuit_placement
from repro.routing import SimulatorConfig, simulate, simulate_batch, simulate_reference


def _fig7_configs():
    configs = [(capacity, 1) for capacity in single_level_capacities()]
    configs += [(capacity, 2) for capacity in two_level_capacities()]
    return configs


def _factory(capacity, levels):
    return build_factory(
        FactorySpec.from_capacity(capacity, levels),
        reuse_policy=ReusePolicy.NO_REUSE,
        barriers_between_rounds=True,
    )


@pytest.mark.parametrize("capacity,levels", _fig7_configs())
def test_mask_engine_equals_reference_on_fig7_factories(capacity, levels):
    """Byte-identical results on every fig7 factory graph and layout."""
    factory = _factory(capacity, levels)
    layouts = [
        linear_factory_placement(factory),
        random_circuit_placement(factory.circuit, seed=0),
    ]
    configs = [
        SimulatorConfig(max_candidates=2),
        SimulatorConfig(max_candidates=8),
        SimulatorConfig(allow_detour=True),
    ]
    for layout in layouts:
        for config in configs:
            mask = simulate(factory.circuit, layout, config)
            reference = simulate_reference(factory.circuit, layout, config)
            assert mask.to_dict() == reference.to_dict()


@pytest.mark.parametrize("capacity,levels", _fig7_configs())
def test_batched_engine_equals_scalar_on_fig7_factories(capacity, levels):
    """The batched core at paper scale: byte-identical at every chunking.

    Each fig7 factory's sweep points (linear and congested random layouts
    under several candidate budgets) run through :func:`simulate_batch` at
    batch sizes 1, 3, 8 and the full point set, and every chunking must
    reproduce per-point :func:`simulate` output exactly.
    """
    factory = _factory(capacity, levels)
    layouts = [
        linear_factory_placement(factory),
        random_circuit_placement(factory.circuit, seed=0),
    ]
    configs = [
        SimulatorConfig(max_candidates=1),
        SimulatorConfig(max_candidates=2),
        SimulatorConfig(max_candidates=8),
    ]
    points = [
        (factory.circuit, layout, config)
        for layout in layouts
        for config in configs
    ]
    expected = [simulate(*point).to_dict() for point in points]
    for batch_size in (1, 3, 8, len(points)):
        results = []
        for start in range(0, len(points), batch_size):
            results.extend(simulate_batch(points[start:start + batch_size]))
        assert [result.to_dict() for result in results] == expected, (
            f"batched run diverged at batch_size={batch_size}"
        )


def test_bench_stall_heavy_speedup(benchmark):
    """Time the wakeup engine against the reference on heavy congestion.

    The workload is the ``sim-congestion`` headline case: the two-level
    K=16 factory under a random placement (the congested Fig. 6 geometry),
    ``max_candidates=8``.  The committed BENCH record shows >= 5x on this
    machine; the assertion floor is deliberately lower (2.5x) so shared CI
    runners with noisy clocks do not flake, while a true regression —
    losing the event-driven wakeup — still fails.
    """
    factory = _factory(16, 2)
    placement = random_circuit_placement(factory.circuit, seed=0)
    config = SimulatorConfig(max_candidates=8)

    reference_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        reference_result = simulate_reference(
            factory.circuit, placement, config, track_wakeups=False
        )
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    mask_result = benchmark(simulate, factory.circuit, placement, config)
    mask_dict = mask_result.to_dict()
    reference_dict = reference_result.to_dict()
    mask_dict.pop("wakeups")  # untracked oracle reports 0; parity suite pins it
    reference_dict.pop("wakeups")
    assert mask_dict == reference_dict

    mask_seconds = benchmark.stats.stats.min
    speedup = reference_seconds / mask_seconds
    print(
        f"\n[bench] stall-heavy simulation, L2 K=16 random placement "
        f"({len(factory.circuit)} gates, {mask_result.stall_events} legacy retries, "
        f"{mask_result.wakeups} wakeups): mask {mask_seconds * 1000:.1f}ms "
        f"vs reference {reference_seconds * 1000:.1f}ms ({speedup:.1f}x)"
    )
    assert speedup >= 2.5
