"""Benchmark: the parallel sweep executor versus serial execution.

Reruns the Fig. 7 scaling sweep (force-directed and graph-partitioning
mappers over single- and two-level factories) as one explicit
:class:`~repro.api.executor.SweepPlan`, serially and across a 4-worker
process pool.  The contract checked here:

* parallel results are **byte-identical** to serial results (always
  asserted, on any machine);
* with at least 4 CPUs, the 4-worker run is at least 2x faster than the
  serial run (skipped on smaller machines, where the wall-clock comparison
  is meaningless).

The speedup sweep replicates the grid over several seeds so no single
evaluation dominates the critical path — mirroring how the paper's data is
gathered over repeated randomized runs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import run_once, single_level_capacities, two_level_capacities
from repro.api import SweepExecutor, SweepPlan

FIG7_METHODS = ("force_directed", "graph_partition")


def fig7_plan(seeds=(0,)) -> SweepPlan:
    """The Fig. 7 scaling sweep (both levels) as one explicit plan."""
    single = SweepPlan.from_grid(
        methods=FIG7_METHODS,
        capacities=single_level_capacities(),
        levels=1,
        seeds=seeds,
    )
    two = SweepPlan.from_grid(
        methods=FIG7_METHODS,
        capacities=two_level_capacities(),
        levels=2,
        seeds=seeds,
    )
    return SweepPlan.from_requests(list(single) + list(two))


def test_bench_fig7_sweep_serial(benchmark):
    """Timing baseline: the full Fig. 7 plan on one worker."""
    result = run_once(benchmark, SweepExecutor(workers=1).run, fig7_plan())
    assert len(result.evaluations) == len(fig7_plan())


def test_fig7_parallel_results_identical():
    """4-worker execution must be byte-identical to serial execution."""
    plan = fig7_plan()
    serial = SweepExecutor(workers=1).run(plan)
    parallel = SweepExecutor(workers=4).run(plan)
    assert json.dumps(parallel.to_dict(), sort_keys=True) == json.dumps(
        serial.to_dict(), sort_keys=True
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup measurement needs >= 4 CPUs",
)
def test_fig7_parallel_speedup_at_least_2x():
    """A 4-worker Fig. 7 sweep is >= 2x faster than serial, same results."""
    plan = fig7_plan(seeds=(0, 1, 2, 3))

    started = time.perf_counter()
    serial = SweepExecutor(workers=1).run(plan)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = SweepExecutor(workers=4).run(plan)
    parallel_seconds = time.perf_counter() - started

    assert parallel.to_dict() == serial.to_dict()
    speedup = serial_seconds / parallel_seconds
    assert speedup >= 2.0, (
        f"4-worker sweep only {speedup:.2f}x faster "
        f"({serial_seconds:.1f}s serial vs {parallel_seconds:.1f}s parallel)"
    )
