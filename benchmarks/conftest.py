"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  By default
the sweeps use reduced capacity ranges so the whole harness completes in a
few minutes; set ``REPRO_FULL_SWEEP=1`` to run the paper's complete parameter
ranges (this takes considerably longer, dominated by the capacity-100
two-level factory).
"""

from __future__ import annotations

import os

import pytest


def full_sweep_enabled() -> bool:
    """Whether the full paper parameter ranges were requested."""
    return os.environ.get("REPRO_FULL_SWEEP", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def full_sweep() -> bool:
    """Fixture form of :func:`full_sweep_enabled`."""
    return full_sweep_enabled()


def two_level_capacities() -> tuple:
    """Two-level factory capacities to sweep (paper range under full sweep)."""
    if full_sweep_enabled():
        return (4, 16, 36, 64, 100)
    return (4, 16)


def single_level_capacities() -> tuple:
    """Single-level factory capacities to sweep."""
    if full_sweep_enabled():
        return (2, 4, 6, 8, 12, 16, 20, 24)
    return (2, 4, 8, 16, 24)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and take seconds to minutes, so the
    default calibration loop of pytest-benchmark (many rounds) is replaced by
    a single measured round.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
