"""Ablation benches for the design choices called out in DESIGN.md.

* Barrier insertion between rounds (Section V-A): compare the simulated
  latency of the linear mapping with and without the end-of-round barrier.
* Dipole-moment rotation force (Section VI-B.1): run the force-directed
  annealer with and without the dipole force and compare the edge-crossing
  count of the resulting mappings.
* Routing flexibility: stall-on-conflict (the paper's semantics) versus a
  detour-capable router.
"""

from conftest import run_once

from repro.circuits import critical_path_length
from repro.distillation import build_single_level_factory, build_two_level_factory
from repro.graphs import count_edge_crossings, interaction_graph
from repro.mapping import (
    ForceDirectedConfig,
    force_directed_refine,
    linear_factory_placement,
    random_circuit_placement,
)
from repro.routing import SimulatorConfig, simulate
from repro.scheduling import strip_barriers


def test_bench_ablation_barriers(benchmark):
    """Barriers isolate rounds at a bounded latency cost."""

    def run():
        factory = build_two_level_factory(4, barriers_between_rounds=True)
        placement = linear_factory_placement(factory)
        with_barrier = simulate(factory.circuit, placement).latency
        without = simulate(strip_barriers(factory.circuit), placement).latency
        return with_barrier, without

    with_barrier, without = run_once(benchmark, run)
    print(f"\nlatency with barrier: {with_barrier}, without: {without}")
    assert with_barrier >= without
    # The barrier may serialise the two rounds but never more than that.
    assert with_barrier <= 2.5 * without


def test_bench_ablation_dipole_force(benchmark):
    """The dipole rotation force reduces edge crossings beyond attraction alone."""

    def run():
        factory = build_single_level_factory(8)
        graph = interaction_graph(factory.circuit)
        initial = random_circuit_placement(factory.circuit, seed=5, slack=1.5)
        with_dipole = force_directed_refine(
            graph, initial, ForceDirectedConfig(sweeps=25, seed=1, use_dipole=True)
        )
        without_dipole = force_directed_refine(
            graph, initial, ForceDirectedConfig(sweeps=25, seed=1, use_dipole=False)
        )
        positions = initial.as_float_positions()
        return (
            count_edge_crossings(graph, positions),
            count_edge_crossings(graph, with_dipole.as_float_positions()),
            count_edge_crossings(graph, without_dipole.as_float_positions()),
        )

    initial_crossings, with_dipole, without_dipole = run_once(benchmark, run)
    print(
        f"\nedge crossings — initial: {initial_crossings}, "
        f"FD with dipole: {with_dipole}, FD without dipole: {without_dipole}"
    )
    # Both variants improve on the random start; the dipole variant should not
    # be meaningfully worse than the ablated one.
    assert with_dipole < initial_crossings
    assert without_dipole < initial_crossings
    assert with_dipole <= without_dipole * 1.25


def test_bench_ablation_routing_flexibility(benchmark):
    """Stall-only routing (paper semantics) versus detour-capable routing."""

    def run():
        factory = build_single_level_factory(8)
        placement = random_circuit_placement(factory.circuit, seed=2)
        stall_only = simulate(
            factory.circuit, placement, SimulatorConfig(max_candidates=1)
        ).latency
        flexible = simulate(
            factory.circuit,
            placement,
            SimulatorConfig(max_candidates=8, allow_detour=True),
        ).latency
        return stall_only, flexible, critical_path_length(factory.circuit)

    stall_only, flexible, bound = run_once(benchmark, run)
    print(
        f"\nlatency stall-only: {stall_only}, "
        f"detour-capable: {flexible}, bound: {bound}"
    )
    assert flexible <= stall_only
    assert flexible >= bound
