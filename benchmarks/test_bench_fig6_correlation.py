"""EXP-F6: regenerate Fig. 6 (metric-vs-latency correlation, r-values)."""

from conftest import full_sweep_enabled, run_once

from repro.experiments import fig6_correlation


def test_bench_fig6_correlation(benchmark):
    """Fig. 6: crossings/length correlate with latency, spacing negatively."""
    num_mappings = 60 if full_sweep_enabled() else 30
    result = run_once(
        benchmark, fig6_correlation.run, capacity=8, num_mappings=num_mappings, seed=0
    )
    print()
    print(fig6_correlation.format_result(result))

    measured = result.measured()
    # Shape checks against the paper's qualitative claims.
    assert measured["edge_crossings_r"] > 0.0
    assert measured["edge_length_r"] > 0.0
    assert measured["edge_crossings_r"] >= measured["edge_length_r"]
