#!/usr/bin/env python
"""Study how mapping geometry predicts braid congestion (Fig. 6).

The paper's force-directed heuristics are motivated by the observation that
three geometric properties of a qubit mapping — edge crossings, average edge
length and average edge spacing — correlate with the latency the braid
simulator realises.  This example draws a population of random mappings of a
single-level factory, simulates each of them, prints a small scatter table
and the resulting Pearson correlation coefficients.

Run with::

    python examples/mapping_metrics_study.py [num_mappings]
"""

import sys

from repro.experiments import fig6_correlation


def main() -> None:
    num_mappings = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    result = fig6_correlation.run(capacity=8, num_mappings=num_mappings, seed=7)

    print("sample  crossings  avg-length  avg-spacing  latency")
    for sample in result.study.samples[:15]:
        print(
            f"{sample.seed:6d}  {sample.edge_crossings:9.0f}  "
            f"{sample.average_edge_length:10.2f}  "
            f"{sample.average_edge_spacing:11.2f}  {sample.latency:7d}"
        )
    if len(result.study.samples) > 15:
        print(f"... ({len(result.study.samples) - 15} more samples)")
    print()
    print(fig6_correlation.format_result(result))
    print()
    print("Interpretation: crossings and edge length push latency up, edge")
    print("spacing pushes it down — the same signs the paper reports, which")
    print("is why the force-directed mapper minimises crossings/length and")
    print("maximises spacing.")


if __name__ == "__main__":
    main()
