#!/usr/bin/env python
"""Compare every mapping procedure on a two-level block-code factory.

This reproduces the heart of the paper's evaluation (Fig. 10c/10d/10f) on a
single factory configuration: a two-level factory of capacity 16 is built,
mapped with the linear baseline, force-directed annealing, recursive graph
partitioning and hierarchical stitching, and each mapping is executed on the
braid simulator.  The printout shows how the permutation step between rounds
separates the procedures: the structure-aware hierarchical stitching achieves
the lowest space-time volume.

Run with::

    python examples/compare_mappers_two_level.py [capacity]
"""

import sys

from repro.api import EvaluationRequest, Pipeline
from repro.scheduling import lower_bound_summary
from repro.distillation import FactorySpec


def main() -> None:
    capacity = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    spec = FactorySpec.from_capacity(capacity, levels=2)
    bounds = lower_bound_summary(spec)
    print(f"Two-level factory, capacity {capacity} (k={spec.k} per module)")
    print(f"  modules: round 1 = {spec.modules_in_round(1)}, "
          f"round 2 = {spec.modules_in_round(2)}")
    print(f"  theoretical lower bounds: latency {bounds['latency']} cycles, "
          f"area {bounds['area']} qubits, volume {bounds['volume']}")
    print()
    header = (
        f"{'procedure':26s}{'latency':>10s}{'area':>10s}"
        f"{'volume':>12s}{'vs bound':>10s}"
    )
    print(header)
    print("-" * len(header))

    methods = ("linear", "force_directed", "graph_partition", "hierarchical_stitching")
    pipeline = Pipeline()  # one factory build, shared by every mapper
    results = {}
    for method in methods:
        evaluation = pipeline.evaluate(
            EvaluationRequest(method=method, capacity=capacity, levels=2)
        )
        results[method] = evaluation
        print(
            f"{method:26s}{evaluation.latency:>10d}{evaluation.area:>10d}"
            f"{evaluation.volume:>12d}{evaluation.volume_over_critical:>10.2f}"
        )

    baseline = results["linear"].volume
    best = results["hierarchical_stitching"].volume
    print()
    print(f"Hierarchical stitching reduces space-time volume by "
          f"{baseline / best:.2f}x over the linear baseline "
          f"(the paper reports up to 5.64x at capacity 100).")


if __name__ == "__main__":
    main()
