#!/usr/bin/env python
"""Quickstart: the pluggable evaluation API on a single-level factory.

This example walks the core loop of the toolchain through `repro.api`:

1. inspect the registered mapping procedures,
2. evaluate one (method, capacity) configuration with the pipeline,
3. register a tiny custom mapper and sweep it against a built-in,
4. round-trip a result through JSON.

Run with::

    python examples/quickstart.py
"""

import json

from repro.api import (
    EvaluationRequest,
    FactoryEvaluation,
    Mapper,
    Pipeline,
    available_mappers,
    register_mapper,
    to_json,
)
from repro.mapping import Placement, grid_dimensions_for


def main() -> None:
    # 1. The mapper registry: the paper's five procedures ship pre-registered.
    print("Registered mappers:", ", ".join(available_mappers()))

    # 2. One evaluation = one request through the pipeline.  The pipeline
    #    builds the factory circuit (cached across evaluations), maps it and
    #    runs the cycle-accurate braid simulator.
    pipeline = Pipeline()
    capacity = 8
    point = pipeline.evaluate(EvaluationRequest(method="linear", capacity=capacity))
    print(f"\nLinear mapping, capacity {capacity}:")
    print(f"  simulated latency : {point.latency} cycles "
          f"(lower bound {point.critical_latency})")
    print(f"  area              : {point.area} logical qubits "
          f"(lower bound {point.critical_area})")
    print(f"  space-time volume : {point.volume} qubit-cycles "
          f"({point.volume_over_critical:.2f}x the critical volume)")

    # 3. A custom mapper plugs into the same pipeline (and into
    #    capacity_sweep, the experiments and the CLI) by registering a name.
    @register_mapper
    class SnakeMapper(Mapper):
        """Row-major snake layout — a deliberately naive baseline."""

        name = "snake"

        def place(self, factory, *, seed=0, context=None):
            qubits = list(range(factory.circuit.num_qubits))
            height, width = grid_dimensions_for(len(qubits))
            placement = Placement(width=width, height=height)
            for index, qubit in enumerate(qubits):
                row, col = divmod(index, width)
                placement.place(qubit, (row, width - 1 - col if row % 2 else col))
            return placement

    print("\nmethod          latency      area    volume")
    for method in ("linear", "snake"):
        result = pipeline.evaluate(
            EvaluationRequest(method=method, capacity=capacity)
        )
        print(f"{method:12s}{result.latency:>10d}{result.area:>10d}"
              f"{result.volume:>10d}")
    print(f"(factory builds: {pipeline.stats.factory_builds}, "
          f"cache hits: {pipeline.stats.cache_hits} — the snake sweep reused "
          f"the built circuit)")

    # 4. Results are JSON round-trippable for dashboards and downstream tools.
    text = to_json(point)
    restored = FactoryEvaluation.from_dict(json.loads(text))
    print(f"\nJSON round-trip intact: {restored == point}")


if __name__ == "__main__":
    main()
