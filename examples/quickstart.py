#!/usr/bin/env python
"""Quickstart: build a Bravyi-Haah factory, map it, and simulate the braids.

This example walks through the core loop of the toolchain on a single-level
factory with capacity 8 (the circuit of Fig. 5 in the paper):

1. generate the distillation circuit,
2. inspect its structure (gate counts, interaction graph, critical path),
3. place the logical qubits with the linear hand-optimized layout,
4. run the cycle-accurate braid simulator,
5. report latency, area and space-time volume.

Run with::

    python examples/quickstart.py
"""

from repro.circuits import critical_path_length, emit_scaffold
from repro.distillation import build_single_level_factory
from repro.graphs import interaction_graph, is_planar
from repro.mapping import linear_factory_placement
from repro.analysis import evaluate_mapping


def main() -> None:
    # 1. Build the distillation circuit: 3k+8 raw states -> k magic states.
    capacity = 8
    factory = build_single_level_factory(capacity)
    circuit = factory.circuit
    print(f"Bravyi-Haah factory, capacity {capacity}")
    print(f"  logical qubits : {circuit.num_qubits}")
    print(f"  gates          : {len(circuit)}")
    print(f"  T-type gates   : {circuit.t_count}")
    print(f"  braided gates  : {circuit.braided_gate_count}")

    # 2. Analyse the schedule and its interaction graph.
    graph = interaction_graph(circuit)
    print(f"  interaction graph: {graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges, planar={is_planar(graph)}")
    print(f"  critical path  : {critical_path_length(circuit)} cycles")

    # 3. Map the qubits with the linear (Fowler-style) layout.
    placement = linear_factory_placement(factory)
    print(f"  placement grid : {placement.height} x {placement.width} tiles")

    # 4/5. Simulate the braids and report the resource costs.
    result = evaluate_mapping(circuit, placement)
    print(f"  simulated latency : {result.latency} cycles")
    print(f"  area              : {result.area} logical qubits")
    print(f"  space-time volume : {result.volume} qubit-cycles")
    print(f"  stall cycles      : {result.stall_cycles}")

    # Bonus: the Scaffold-style listing of the first few gates.
    listing = emit_scaffold(circuit).splitlines()
    print("\nFirst lines of the Scaffold-style listing:")
    for line in listing[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
