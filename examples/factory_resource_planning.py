#!/usr/bin/env python
"""Plan the resources of a magic-state factory for a target application.

The paper's motivation (Section II-D/II-E) is that practical quantum
algorithms need on the order of 10^12 T gates, each consuming one distilled
magic state.  This example uses the analytic error model and the resource
accounting of the library to answer the planning questions a fault-tolerant
architect would ask:

* how many distillation levels are needed to reach the target fidelity,
* what code distance each round requires (balanced investment),
* how many physical qubits the factory occupies,
* what throughput (states per unit volume) the mapped factory achieves.

Run with::

    python examples/factory_resource_planning.py
"""

from repro.analysis import evaluate_factory_mapping
from repro.distillation import (
    ErrorBudget,
    FactorySpec,
    factory_resources,
    required_levels,
)


def main() -> None:
    budget = ErrorBudget(
        physical_error=1e-3,
        injection_error=5e-3,
        target_error=1e-5,
    )
    k = 4
    levels = required_levels(k, budget.injection_error, budget.target_error)
    print("Error budget")
    print(f"  physical error rate : {budget.physical_error:.1e}")
    print(f"  injected state error: {budget.injection_error:.1e}")
    print(f"  target output error : {budget.target_error:.1e}")
    print(f"  -> {levels} Bravyi-Haah levels needed with k={k}")
    print()

    spec = FactorySpec(k=k, levels=levels)
    resources = factory_resources(spec, budget)
    print(f"Factory structure (capacity {spec.capacity} states per batch)")
    for round_resources in resources.rounds:
        print(
            f"  round {round_resources.round_index}: "
            f"{round_resources.modules:3d} modules, "
            f"{round_resources.logical_qubits:5d} logical qubits, "
            f"d={round_resources.code_distance:2d}, "
            f"{round_resources.physical_qubits:7d} physical qubits, "
            f"output error {round_resources.output_error:.2e}"
        )
    print(f"  peak physical footprint: {resources.max_physical_qubits} qubits")
    print()

    if levels == 2:
        print("Mapping the factory with hierarchical stitching...")
        evaluation = evaluate_factory_mapping(
            "hierarchical_stitching", spec.capacity, levels=2
        )
        print(
            f"  latency {evaluation.latency} cycles, area {evaluation.area} tiles, "
            f"volume {evaluation.volume} qubit-cycles"
        )
        throughput = spec.capacity / evaluation.volume
        print(f"  throughput: {throughput:.2e} magic states per qubit-cycle")
        t_gates_needed = 1e12
        print(
            f"  a 10^12 T-gate application therefore needs about "
            f"{t_gates_needed / spec.capacity:.2e} factory batches"
        )


if __name__ == "__main__":
    main()
